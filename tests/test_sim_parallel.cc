/**
 * @file
 * Differential harness for the shard-parallel simulation engine
 * (sim/sharded_runner) and the clone() contract it rests on:
 * serial-vs-sharded equivalence, determinism across repeated runs
 * and job counts, golden mispredict snapshots for two catalog
 * workloads, per-predictor clone-then-predict checks, and a
 * many-small-windows stress test meant to run under TSan.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bp/perceptron.hh"
#include "bp/simple_predictors.hh"
#include "branchnet/branchnet_predictor.hh"
#include "core/static_profile.hh"
#include "core/whisper_predictor.hh"
#include "rombf/rombf_predictor.hh"
#include "sim/experiment.hh"
#include "sim/sharded_runner.hh"
#include "util/rng.hh"
#include "workloads/app_workload.hh"

using namespace whisper;

namespace
{

/** BranchSource view over a record vector. */
class VecSource : public BranchSource
{
  public:
    explicit VecSource(const std::vector<BranchRecord> &records)
        : records_(records)
    {
    }

    bool
    next(BranchRecord &rec) override
    {
        if (pos_ >= records_.size())
            return false;
        rec = records_[pos_++];
        return true;
    }

    void rewind() override { pos_ = 0; }

  private:
    const std::vector<BranchRecord> &records_;
    size_t pos_ = 0;
};

std::vector<BranchRecord>
materialize(const char *appName, uint32_t input, uint64_t n)
{
    AppWorkload workload(appByName(appName), input, n);
    std::vector<BranchRecord> records;
    records.reserve(n);
    BranchRecord rec;
    while (workload.next(rec))
        records.push_back(rec);
    return records;
}

/** Synthetic stream from the repo RNG: fixed seed, no wall clock. */
std::vector<BranchRecord>
randomTrace(uint64_t seed, uint64_t n)
{
    Rng rng(seed);
    std::vector<BranchRecord> records;
    records.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        BranchRecord rec;
        rec.pc = 0x1000 + 16 * rng.nextBelow(97);
        rec.kind = rng.nextBool(0.85) ? BranchKind::Conditional
                                      : BranchKind::Unconditional;
        // Mix of biased and history-correlated outcomes.
        bool correlated = (i % 7) < 3;
        rec.taken = correlated ? (i % 2 == 0) : rng.nextBool(0.7);
        rec.instGap = static_cast<uint8_t>(1 + rng.nextBelow(12));
        records.push_back(rec);
    }
    return records;
}

void
expectStatsEq(const PredictorRunStats &a, const PredictorRunStats &b,
              const char *what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.conditionals, b.conditionals) << what;
    EXPECT_EQ(a.mispredicts, b.mispredicts) << what;
    EXPECT_EQ(a.warmupInstructions, b.warmupInstructions) << what;
}

ShardedRunConfig
exactConfig(unsigned jobs, uint64_t window, double statsWarmup = 0.0)
{
    ShardedRunConfig cfg;
    cfg.jobs = jobs;
    cfg.windowRecords = window;
    cfg.warmupRecords = ShardedRunConfig::kFullPrefix;
    cfg.statsWarmupFraction = statsWarmup;
    return cfg;
}

ShardedRunConfig
boundedConfig(unsigned jobs, uint64_t window, uint64_t warm)
{
    ShardedRunConfig cfg;
    cfg.jobs = jobs;
    cfg.windowRecords = window;
    cfg.warmupRecords = warm;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------
// Serial-vs-sharded equivalence (full-prefix warm-up).
// ---------------------------------------------------------------

TEST(ShardedEquivalence, FullPrefixMatchesSerialAcrossJobCounts)
{
    auto records = materialize("kafka", 0, 60000);
    auto proto = makeTage(16);

    VecSource src(records);
    PredictorRunStats serial = runPredictor(src, *proto, 0.5);
    // The prototype was mutated by the serial run; shard from a
    // fresh one so every path starts from reset state.
    auto fresh = makeTage(16);

    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        auto run = runPredictorSharded(records, *fresh,
                                       exactConfig(jobs, 15000, 0.5));
        expectStatsEq(run.total, serial,
                      ("jobs=" + std::to_string(jobs)).c_str());
        // The merge is exactly the sum of the per-window slots.
        PredictorRunStats sum;
        for (const auto &w : run.perWindow) {
            sum.instructions += w.instructions;
            sum.conditionals += w.conditionals;
            sum.mispredicts += w.mispredicts;
            sum.warmupInstructions += w.warmupInstructions;
        }
        expectStatsEq(sum, run.total, "per-window sum");
        EXPECT_EQ(run.perWindow.size(), 4u);
        EXPECT_EQ(run.timing.perShard.size(), 4u);
    }
}

TEST(ShardedEquivalence, SingleWindowJobs1IsTheSerialRun)
{
    auto records = materialize("mysql", 1, 20000);
    GsharePredictor serial;
    VecSource src(records);
    PredictorRunStats want = runPredictor(src, serial, 0.0);

    GsharePredictor proto;
    auto run = runPredictorSharded(
        records, proto, exactConfig(1, records.size() + 1));
    expectStatsEq(run.total, want, "single window");
    EXPECT_EQ(run.perWindow.size(), 1u);
    EXPECT_EQ(run.timing.jobs, 1u);
}

TEST(ShardedEquivalence, StatsWarmupFractionMatchesSerial)
{
    auto records = materialize("tomcat", 0, 40000);
    PerceptronPredictor serial;
    VecSource src(records);
    PredictorRunStats want = runPredictor(src, serial, 0.3);

    PerceptronPredictor proto;
    auto run = runPredictorSharded(records, proto,
                                   exactConfig(4, 9000, 0.3));
    expectStatsEq(run.total, want, "warmup 0.3");
    EXPECT_GT(run.total.warmupInstructions, 0u);
}

// ---------------------------------------------------------------
// Determinism: job count and repeated runs never change the stats.
// ---------------------------------------------------------------

TEST(ShardedDeterminism, BoundedWarmupIndependentOfJobCount)
{
    auto records = materialize("kafka", 0, 50000);
    auto proto = makeTage(16);

    auto reference = runPredictorSharded(
        records, *proto, boundedConfig(1, 10000, 5000));
    for (unsigned jobs : {2u, 4u, 8u}) {
        auto run = runPredictorSharded(
            records, *proto, boundedConfig(jobs, 10000, 5000));
        expectStatsEq(run.total, reference.total,
                      ("jobs=" + std::to_string(jobs)).c_str());
        ASSERT_EQ(run.perWindow.size(),
                  reference.perWindow.size());
        for (size_t w = 0; w < run.perWindow.size(); ++w)
            expectStatsEq(run.perWindow[w], reference.perWindow[w],
                          ("window " + std::to_string(w)).c_str());
    }
}

TEST(ShardedDeterminism, RepeatedRunsAreBitIdentical)
{
    // Timing fields may differ between runs; the statistics must
    // not — they never read a clock.
    auto records = randomTrace(1234, 30000);
    auto proto = makeTage(8);
    auto cfg = boundedConfig(4, 3000, 1500);

    auto first = runPredictorSharded(records, *proto, cfg);
    auto second = runPredictorSharded(records, *proto, cfg);
    expectStatsEq(first.total, second.total, "repeat total");
    ASSERT_EQ(first.perWindow.size(), second.perWindow.size());
    for (size_t w = 0; w < first.perWindow.size(); ++w)
        expectStatsEq(first.perWindow[w], second.perWindow[w],
                      ("window " + std::to_string(w)).c_str());
}

TEST(ShardedDeterminism, PrototypeIsLeftUntouched)
{
    auto records = materialize("kafka", 0, 20000);
    GsharePredictor proto, witness;
    runPredictorSharded(records, proto, boundedConfig(4, 5000, 1000));

    // The prototype still predicts exactly like a fresh predictor.
    for (const auto &rec : records) {
        if (!rec.isConditional())
            continue;
        ASSERT_EQ(proto.predict(rec.pc, rec.taken),
                  witness.predict(rec.pc, rec.taken));
        proto.update(rec.pc, rec.taken, rec.taken);
        witness.update(rec.pc, rec.taken, rec.taken);
    }
}

// ---------------------------------------------------------------
// Edge cases.
// ---------------------------------------------------------------

TEST(ShardedEdge, EmptyStream)
{
    std::vector<BranchRecord> empty;
    GsharePredictor proto;
    auto run = runPredictorSharded(empty, proto,
                                   boundedConfig(4, 1000, 100));
    EXPECT_EQ(run.total.instructions, 0u);
    EXPECT_EQ(run.total.conditionals, 0u);
    EXPECT_EQ(run.perWindow.size(), 0u);
}

TEST(ShardedEdge, PartialLastWindow)
{
    // 7 windows of 3000 plus a 2000-record tail.
    auto records = materialize("drupal", 0, 23000);
    BimodalPredictor serial, proto;
    VecSource src(records);
    PredictorRunStats want = runPredictor(src, serial, 0.0);
    auto run = runPredictorSharded(records, proto,
                                   exactConfig(4, 3000));
    expectStatsEq(run.total, want, "partial tail");
    EXPECT_EQ(run.perWindow.size(), 8u);
}

// ---------------------------------------------------------------
// Adaptive sharded runs mirror runPredictorAdaptive.
// ---------------------------------------------------------------

TEST(ShardedAdaptive, FullPrefixMatchesSerialAdaptive)
{
    auto records = materialize("kafka", 0, 40000);

    auto serialPred = makeTage(16);
    VecSource src(records);
    AdaptiveRunStats serial = runPredictorAdaptive(
        src, *serialPred, 10000,
        [](uint64_t) -> BranchPredictor * { return nullptr; });

    auto proto = makeTage(16);
    ShardedRunConfig cfg;
    cfg.jobs = 4;
    cfg.warmupRecords = ShardedRunConfig::kFullPrefix;
    auto sharded = runPredictorAdaptiveSharded(records, *proto,
                                               10000, nullptr, cfg);

    expectStatsEq(sharded.stats.total, serial.total, "adaptive");
    ASSERT_EQ(sharded.stats.perEpoch.size(),
              serial.perEpoch.size());
    for (size_t e = 0; e < serial.perEpoch.size(); ++e)
        expectStatsEq(sharded.stats.perEpoch[e], serial.perEpoch[e],
                      ("epoch " + std::to_string(e)).c_str());
    EXPECT_EQ(sharded.stats.predictorSwaps, serial.predictorSwaps);
    EXPECT_EQ(sharded.stats.predictorSwaps, 0u);
}

TEST(ShardedAdaptive, RefreshSeesTheSerialEpochSequence)
{
    auto records = materialize("mysql", 0, 25000);
    GsharePredictor a;
    BimodalPredictor b;

    std::vector<uint64_t> serialCalls, shardedCalls;
    auto hook = [&b](std::vector<uint64_t> &calls) {
        return [&b, &calls](uint64_t nextEpoch) -> BranchPredictor * {
            calls.push_back(nextEpoch);
            return nextEpoch == 2 ? &b : nullptr;
        };
    };

    GsharePredictor serialInit;
    VecSource src(records);
    AdaptiveRunStats serial = runPredictorAdaptive(
        src, serialInit, 5000, hook(serialCalls));

    ShardedRunConfig cfg;
    cfg.jobs = 4;
    cfg.warmupRecords = ShardedRunConfig::kFullPrefix;
    auto sharded = runPredictorAdaptiveSharded(records, a, 5000,
                                               hook(shardedCalls),
                                               cfg);

    EXPECT_EQ(shardedCalls, serialCalls);
    EXPECT_EQ(sharded.stats.predictorSwaps, serial.predictorSwaps);
    EXPECT_EQ(sharded.stats.predictorSwaps, 1u);
    EXPECT_EQ(sharded.stats.perEpoch.size(),
              serial.perEpoch.size());

    // With a swap the carry-over state is approximated; the
    // approximation itself must still be job-count independent.
    auto again = runPredictorAdaptiveSharded(records, a, 5000,
                                             hook(shardedCalls),
                                             exactConfig(1, 5000));
    expectStatsEq(again.stats.total, sharded.stats.total,
                  "swap determinism");
}

// ---------------------------------------------------------------
// Golden regression snapshots: exact integer mispredict counts for
// two catalog workloads, checked on the serial engine and on the
// sharded engine in exact mode. The workload generators assert
// deterministic replay (tools_pipeline.sh), so these are stable
// until someone changes the predictor or the generator — which is
// exactly what this test is meant to catch.
// ---------------------------------------------------------------

namespace
{

struct Golden
{
    const char *app;
    uint32_t input;
    uint64_t records;
    uint64_t conditionals;
    uint64_t mispredicts;
    uint64_t instructions;
};

// TAGE-SC-L 64KB, stats warm-up fraction 0.5.
constexpr Golden kGoldens[] = {
    {"mysql", 0, 120000, 54686, 5110, 540547},
    {"kafka", 0, 120000, 55445, 1746, 539827},
};

} // namespace

class GoldenSnapshot : public ::testing::TestWithParam<Golden>
{
};

TEST_P(GoldenSnapshot, SerialAndShardedMatchTheSnapshot)
{
    const Golden &g = GetParam();
    auto records = materialize(g.app, g.input, g.records);

    auto serialPred = makeTage(64);
    VecSource src(records);
    PredictorRunStats serial = runPredictor(src, *serialPred, 0.5);
    EXPECT_EQ(serial.conditionals, g.conditionals) << g.app;
    EXPECT_EQ(serial.mispredicts, g.mispredicts) << g.app;
    EXPECT_EQ(serial.instructions, g.instructions) << g.app;

    auto proto = makeTage(64);
    auto sharded = runPredictorSharded(records, *proto,
                                       exactConfig(4, 30000, 0.5));
    expectStatsEq(sharded.total, serial, g.app);
}

INSTANTIATE_TEST_SUITE_P(CatalogWorkloads, GoldenSnapshot,
                         ::testing::ValuesIn(kGoldens));

// ---------------------------------------------------------------
// clone() contract: after cloning, original and clone make the same
// predictions on the same continuation, for every predictor type.
// ---------------------------------------------------------------

namespace
{

/** Drive @p pred over records[0, split), clone, then check that the
 * original and the clone stay in lockstep over [split, n). */
void
expectCloneTracksOriginal(BranchPredictor &pred,
                          const std::vector<BranchRecord> &records,
                          size_t split)
{
    ASSERT_LT(split, records.size());
    for (size_t i = 0; i < split; ++i) {
        const BranchRecord &rec = records[i];
        if (rec.isConditional()) {
            bool p = pred.predict(rec.pc, rec.taken);
            pred.update(rec.pc, rec.taken, p);
        }
        pred.onRecord(rec);
    }

    auto copy = pred.clone();
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->name(), pred.name());
    EXPECT_EQ(copy->storageBits(), pred.storageBits());

    uint64_t conditionals = 0;
    for (size_t i = split; i < records.size(); ++i) {
        const BranchRecord &rec = records[i];
        if (rec.isConditional()) {
            bool po = pred.predict(rec.pc, rec.taken);
            bool pc = copy->predict(rec.pc, rec.taken);
            ASSERT_EQ(po, pc) << "record " << i;
            pred.update(rec.pc, rec.taken, po);
            copy->update(rec.pc, rec.taken, pc);
            ++conditionals;
        }
        pred.onRecord(rec);
        copy->onRecord(rec);
    }
    EXPECT_GT(conditionals, 0u);
}

} // namespace

TEST(CloneContract, StaticPredictor)
{
    auto records = materialize("kafka", 0, 4000);
    StaticPredictor pred(true);
    expectCloneTracksOriginal(pred, records, 2000);
}

TEST(CloneContract, IdealPredictor)
{
    auto records = materialize("kafka", 0, 4000);
    IdealPredictor pred;
    expectCloneTracksOriginal(pred, records, 2000);
}

TEST(CloneContract, BimodalPredictor)
{
    auto records = materialize("mysql", 0, 6000);
    BimodalPredictor pred;
    expectCloneTracksOriginal(pred, records, 3000);
}

TEST(CloneContract, GsharePredictor)
{
    auto records = materialize("mysql", 0, 6000);
    GsharePredictor pred;
    expectCloneTracksOriginal(pred, records, 3000);
}

TEST(CloneContract, PerceptronPredictor)
{
    auto records = materialize("tomcat", 0, 6000);
    PerceptronPredictor pred;
    expectCloneTracksOriginal(pred, records, 3000);
}

TEST(CloneContract, TageScl)
{
    auto records = materialize("kafka", 0, 8000);
    auto pred = makeTage(16);
    expectCloneTracksOriginal(*pred, records, 4000);
}

TEST(CloneContract, StaticProfilePredictor)
{
    BranchProfile profile{WhisperConfig{}};
    for (uint64_t pc : {0x40ull, 0x80ull, 0xC0ull}) {
        BranchProfileEntry &e = profile.entry(pc);
        e.executions = 10;
        e.takenCount = pc == 0x80 ? 2 : 9;
    }
    StaticProfilePredictor pred(profile);
    auto records = materialize("kafka", 0, 4000);
    expectCloneTracksOriginal(pred, records, 2000);
}

TEST(CloneContract, WhisperPredictor)
{
    // Handcrafted bundle: an always-taken hint and a formula hint,
    // both placed on predecessor 0xA00 so the hint buffer actually
    // fills and the clone must copy it (not alias it).
    std::vector<TrainedHint> hints(2);
    hints[0].pc = 0xB00;
    hints[0].hint.bias = HintBias::AlwaysTaken;
    hints[0].hint.pcPointer = BrHint::pcPointerFor(0xB00);
    hints[1].pc = 0xC00;
    hints[1].hint.bias = HintBias::Formula;
    hints[1].hint.formula = 0x5AC3;
    hints[1].hint.historyIdx = 1;
    hints[1].hint.pcPointer = BrHint::pcPointerFor(0xC00);

    std::vector<HintPlacement> placements(2);
    placements[0].branchPc = 0xB00;
    placements[0].predecessorPc = 0xA00;
    placements[1].branchPc = 0xC00;
    placements[1].predecessorPc = 0xA00;

    WhisperPredictor pred(makeTage(8), WhisperConfig{},
                          globalTruthTables(), hints, placements);

    // Stream where the predecessor fires before the hinted branches.
    Rng rng(77);
    std::vector<BranchRecord> records;
    for (int i = 0; i < 4000; ++i) {
        BranchRecord rec;
        rec.instGap = 3;
        switch (i % 4) {
        case 0:
            rec.pc = 0xA00;
            rec.kind = BranchKind::Unconditional;
            rec.taken = true;
            break;
        case 1:
            rec.pc = 0xB00;
            rec.kind = BranchKind::Conditional;
            rec.taken = rng.nextBool(0.9);
            break;
        case 2:
            rec.pc = 0xC00;
            rec.kind = BranchKind::Conditional;
            rec.taken = rng.nextBool(0.5);
            break;
        default:
            rec.pc = 0xD00 + 16 * rng.nextBelow(5);
            rec.kind = BranchKind::Conditional;
            rec.taken = rng.nextBool(0.6);
            break;
        }
        records.push_back(rec);
    }
    expectCloneTracksOriginal(pred, records, 2000);
    EXPECT_GT(pred.hintPredictions(), 0u);
}

TEST(CloneContract, RombfPredictor)
{
    RombfTrainer trainer(4);
    std::vector<RombfHint> hints(2);
    hints[0].pc = 0x1000;
    hints[0].tableIdx = 0;
    hints[1].pc = 0x1010;
    hints[1].tableIdx = -1;
    hints[1].biasTaken = true;

    RombfPredictor pred(makeTage(8), trainer, hints);
    auto records = randomTrace(9, 4000);
    expectCloneTracksOriginal(pred, records, 2000);
}

TEST(CloneContract, BranchNetPredictor)
{
    BranchNetPredictor pred(makeTage(8), {}, "unit");
    auto records = materialize("kafka", 0, 4000);
    expectCloneTracksOriginal(pred, records, 2000);
}

// ---------------------------------------------------------------
// Stress: many small windows on many threads. Run this binary under
// ThreadSanitizer (-DWHISPER_SANITIZE=thread) — the CI matrix does.
// ---------------------------------------------------------------

TEST(ShardedStress, ManySmallWindowsStayDeterministic)
{
    auto records = randomTrace(42, 40000);
    auto proto = makeTage(8);
    auto cfg = boundedConfig(8, 1000, 500); // 40 windows, 8 threads

    auto first = runPredictorSharded(records, *proto, cfg);
    auto second = runPredictorSharded(records, *proto, cfg);
    EXPECT_EQ(first.perWindow.size(), 40u);
    expectStatsEq(first.total, second.total, "stress repeat");
    for (size_t w = 0; w < first.perWindow.size(); ++w)
        expectStatsEq(first.perWindow[w], second.perWindow[w],
                      ("window " + std::to_string(w)).c_str());

    // Every window was evaluated and accounted exactly once.
    uint64_t records_seen = 0;
    for (const auto &t : first.timing.perShard)
        records_seen += t.records;
    EXPECT_EQ(records_seen, records.size());
}
