/**
 * @file
 * Differential and golden tests for the flat open-addressing
 * HintBuffer against the pointer-chasing LegacyHintBuffer it
 * replaced.
 *
 * The flat table claims *exact* LRU-equivalence: same hit/miss
 * outcomes, same eviction victims, same recency order, same
 * counters, for any access script. The golden scripts pin specific
 * known-tricky sequences (eviction under wraparound probing,
 * refresh-vs-insert accounting, clear() semantics); the randomized
 * property test replays long scripts against both implementations
 * and asserts observable-state equality after every operation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/hint_buffer.hh"
#include "core/legacy_hint_buffer.hh"
#include "util/rng.hh"

using namespace whisper;

namespace
{

BrHint
hintFor(uint64_t pc)
{
    BrHint h;
    h.historyIdx = static_cast<uint8_t>(pc & 0xF);
    h.formula = static_cast<uint16_t>((pc * 0x9E37u) & 0x7FFF);
    h.bias = static_cast<HintBias>(pc % 3);
    h.pcPointer = BrHint::pcPointerFor(pc);
    return h;
}

/** Assert every observable of the two buffers matches. */
template <typename A, typename B>
void
expectSameState(A &flat, B &legacy, const char *where)
{
    EXPECT_EQ(flat.size(), legacy.size()) << where;
    EXPECT_EQ(flat.hits(), legacy.hits()) << where;
    EXPECT_EQ(flat.misses(), legacy.misses()) << where;
    EXPECT_EQ(flat.insertions(), legacy.insertions()) << where;
    EXPECT_EQ(flat.refreshes(), legacy.refreshes()) << where;
    EXPECT_EQ(flat.evictions(), legacy.evictions()) << where;
    ASSERT_EQ(flat.lruOrder(), legacy.lruOrder()) << where;
}

} // namespace

// ---------------------------------------------------------------
// Golden script: a fixed access sequence with hand-checked expected
// state at each step. Run against BOTH implementations so a future
// change to either one that shifts eviction order or accounting
// fails loudly.
// ---------------------------------------------------------------

template <typename Buffer>
class HintBufferGolden : public ::testing::Test
{
};

using BufferImpls = ::testing::Types<HintBuffer, LegacyHintBuffer>;
TYPED_TEST_SUITE(HintBufferGolden, BufferImpls);

TYPED_TEST(HintBufferGolden, LruEvictionScript)
{
    TypeParam buf(3);
    ASSERT_EQ(buf.capacity(), 3u);

    // Fill: 10, 20, 30 -> MRU order 30, 20, 10.
    buf.insert(0x10, hintFor(0x10));
    buf.insert(0x20, hintFor(0x20));
    buf.insert(0x30, hintFor(0x30));
    EXPECT_EQ(buf.size(), 3u);
    EXPECT_EQ(buf.insertions(), 3u);
    EXPECT_EQ(buf.lruOrder(),
              (std::vector<uint64_t>{0x30, 0x20, 0x10}));

    // Touch 10: it becomes MRU; LRU is now 20.
    ASSERT_NE(buf.lookup(0x10), nullptr);
    EXPECT_EQ(buf.lruOrder(),
              (std::vector<uint64_t>{0x10, 0x30, 0x20}));

    // Insert 40: victim must be 20 (the LRU), not 10.
    buf.insert(0x40, hintFor(0x40));
    EXPECT_EQ(buf.evictions(), 1u);
    EXPECT_EQ(buf.lruOrder(),
              (std::vector<uint64_t>{0x40, 0x10, 0x30}));
    EXPECT_EQ(buf.lookup(0x20), nullptr) << "victim still resident";

    // Re-insert resident 30: refresh, not insertion, no eviction.
    buf.insert(0x30, hintFor(0x99));
    EXPECT_EQ(buf.insertions(), 4u);
    EXPECT_EQ(buf.refreshes(), 1u);
    EXPECT_EQ(buf.evictions(), 1u);
    EXPECT_EQ(buf.lruOrder(),
              (std::vector<uint64_t>{0x30, 0x40, 0x10}));
    // The refresh rewrote the payload.
    const BrHint *h = buf.lookup(0x30);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(*h, hintFor(0x99));

    // Insert 50, 60: victims in exact LRU order (10 then 40).
    buf.insert(0x50, hintFor(0x50));
    EXPECT_EQ(buf.lookup(0x10), nullptr);
    buf.insert(0x60, hintFor(0x60));
    EXPECT_EQ(buf.lookup(0x40), nullptr);
    EXPECT_EQ(buf.evictions(), 3u);
    EXPECT_EQ(buf.lruOrder(),
              (std::vector<uint64_t>{0x60, 0x50, 0x30}));
}

TYPED_TEST(HintBufferGolden, ClearKeepsCountersResetStatsZeroes)
{
    TypeParam buf(2);
    buf.insert(1, hintFor(1));
    buf.insert(2, hintFor(2));
    buf.insert(3, hintFor(3)); // evicts 1
    buf.lookup(2);             // hit
    buf.lookup(1);             // miss

    EXPECT_EQ(buf.insertions(), 3u);
    EXPECT_EQ(buf.evictions(), 1u);
    EXPECT_EQ(buf.hits(), 1u);
    EXPECT_EQ(buf.misses(), 1u);

    // clear() models a hint-bundle redeploy: the buffer empties but
    // cumulative service counters survive.
    buf.clear();
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_TRUE(buf.lruOrder().empty());
    EXPECT_EQ(buf.insertions(), 3u);
    EXPECT_EQ(buf.evictions(), 1u);
    EXPECT_EQ(buf.hits(), 1u);
    EXPECT_EQ(buf.misses(), 1u);
    EXPECT_EQ(buf.lookup(2), nullptr) << "cleared entry resident";
    EXPECT_EQ(buf.misses(), 2u);

    buf.resetStats();
    EXPECT_EQ(buf.hits(), 0u);
    EXPECT_EQ(buf.misses(), 0u);
    EXPECT_EQ(buf.insertions(), 0u);
    EXPECT_EQ(buf.refreshes(), 0u);
    EXPECT_EQ(buf.evictions(), 0u);
}

TYPED_TEST(HintBufferGolden, CapacityOneDegenerate)
{
    TypeParam buf(1);
    buf.insert(7, hintFor(7));
    buf.insert(8, hintFor(8));
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf.evictions(), 1u);
    EXPECT_EQ(buf.lookup(7), nullptr);
    ASSERT_NE(buf.lookup(8), nullptr);
    buf.insert(8, hintFor(8));
    EXPECT_EQ(buf.refreshes(), 1u);
    EXPECT_EQ(buf.evictions(), 1u);
}

TYPED_TEST(HintBufferGolden, CopyIsDeep)
{
    TypeParam a(4);
    a.insert(1, hintFor(1));
    a.insert(2, hintFor(2));
    a.lookup(1);

    TypeParam b(a);
    EXPECT_EQ(b.lruOrder(), a.lruOrder());
    EXPECT_EQ(b.hits(), a.hits());

    // Mutating the copy must not disturb the original.
    b.insert(3, hintFor(3));
    b.lookup(2);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.lruOrder(), (std::vector<uint64_t>{1, 2}));
}

// ---------------------------------------------------------------
// Randomized differential property: both implementations replay the
// same script and must agree on every observable after every op.
// ---------------------------------------------------------------

TEST(HintBufDifferential, RandomScriptsMatchLegacy)
{
    for (unsigned capacity : {1u, 2u, 3u, 8u, 32u}) {
        HintBuffer flat(capacity);
        LegacyHintBuffer legacy(capacity);
        // PC pool ~3x capacity so lookups mix hits and misses and
        // inserts regularly evict.
        uint64_t pcPool = 3 * capacity + 2;
        Rng rng(0xC0FFEE + capacity);

        for (int op = 0; op < 20000; ++op) {
            uint64_t pc = 0x4000 + rng.nextBelow(
                static_cast<uint32_t>(pcPool)) * 0x40;
            switch (rng.nextBelow(8)) {
              case 0:
              case 1:
              case 2: { // insert
                BrHint h = hintFor(pc + op % 3);
                flat.insert(pc, h);
                legacy.insert(pc, h);
                break;
              }
              case 7: // rare clear
                if (op % 977 == 0) {
                    flat.clear();
                    legacy.clear();
                    break;
                }
                [[fallthrough]];
              default: { // lookup
                const BrHint *a = flat.lookup(pc);
                const BrHint *b = legacy.lookup(pc);
                ASSERT_EQ(a == nullptr, b == nullptr)
                    << "hit/miss diverged at op " << op;
                if (a) {
                    ASSERT_EQ(*a, *b) << "payload diverged at op "
                                      << op;
                }
                break;
              }
            }
            if (op % 64 == 0)
                expectSameState(flat, legacy, "periodic");
        }
        expectSameState(flat, legacy, "final");
    }
}

// lookupMany claims observable equivalence with a serial lookup
// loop: same hit/miss classification, same payloads, same counters,
// same recency refreshes — including duplicate PCs within a batch.
TEST(HintBufDifferential, LookupManyMatchesSerialLookups)
{
    HintBuffer batched(8);
    HintBuffer serial(8);
    LegacyHintBuffer legacy(8);
    Rng rng(0xBA7C4);

    std::vector<uint64_t> pcs;
    std::vector<const BrHint *> out;
    for (int round = 0; round < 400; ++round) {
        // A few inserts between batches keep contents churning.
        for (uint32_t i = 0, n = rng.nextBelow(4); i < n; ++i) {
            uint64_t pc = 0x8000 + rng.nextBelow(20) * 0x10;
            BrHint h = hintFor(pc + round);
            batched.insert(pc, h);
            serial.insert(pc, h);
            legacy.insert(pc, h);
        }

        pcs.clear();
        for (uint32_t i = 0, n = rng.nextBelow(700); i < n; ++i)
            pcs.push_back(0x8000 + rng.nextBelow(24) * 0x10);
        out.assign(pcs.size(), nullptr);
        batched.lookupMany(pcs.data(), pcs.size(), out.data());

        for (size_t i = 0; i < pcs.size(); ++i) {
            const BrHint *a = serial.lookup(pcs[i]);
            const BrHint *b = legacy.lookup(pcs[i]);
            ASSERT_EQ(out[i] == nullptr, a == nullptr)
                << "batch hit/miss diverged, round " << round
                << " i " << i;
            ASSERT_EQ(a == nullptr, b == nullptr);
            if (out[i]) {
                ASSERT_EQ(*out[i], *a);
            }
        }
        expectSameState(batched, serial, "batched-vs-serial");
        expectSameState(batched, legacy, "batched-vs-legacy");
    }
}

// Adversarial keys: PCs engineered to collide in the open-addressing
// probe sequence (same low bits) stress backward-shift deletion on
// eviction. The legacy list is insensitive to key values, so any
// probe-chain corruption shows up as a divergence.
TEST(HintBufDifferential, CollidingKeysStressBackwardShift)
{
    HintBuffer flat(4);
    LegacyHintBuffer legacy(4);
    Rng rng(42);

    for (int op = 0; op < 20000; ++op) {
        // 6 distinct keys over a capacity-4 buffer, stride chosen so
        // several share home slots in the 8-slot table.
        uint64_t pc = 0x1000 + (rng.nextBelow(6) << 3);
        if (rng.nextBool(0.5)) {
            BrHint h = hintFor(pc);
            flat.insert(pc, h);
            legacy.insert(pc, h);
        } else {
            const BrHint *a = flat.lookup(pc);
            const BrHint *b = legacy.lookup(pc);
            ASSERT_EQ(a == nullptr, b == nullptr) << "op " << op;
        }
        expectSameState(flat, legacy, "colliding");
    }
}
