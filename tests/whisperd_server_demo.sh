#!/bin/sh
# Loopback end-to-end demo of whisperd's wire server, in three legs:
#
#   chaos        — whisper_loadgen drives a fleet of concurrent
#                  agents (default 128; WHISPER_SERVER_DEMO_AGENTS
#                  overrides, e.g. for TSan CI) through an active
#                  wire fault spec: corrupt CRCs, torn frames,
#                  mid-frame connection kills, slow-loris stalls.
#                  Every chunk must end acknowledged exactly once.
#   byte-identity— the same traffic (dumped chunk-for-chunk by the
#                  load generator) is replayed through the in-process
#                  --chunks ingest path; every tenant's deployed
#                  bundle must be byte-identical to the wire run's.
#   kill-9/WAL   — a second server is kill -9ed mid-load; a restart
#                  on the same port resumes deployed tenants from
#                  their journals while the still-running clients
#                  reconnect and retransmit to completion.
set -e

BIN_DIR="$1"
AGENTS="${WHISPER_SERVER_DEMO_AGENTS:-128}"
CHUNKS_PER_AGENT="${WHISPER_SERVER_DEMO_CHUNKS:-4}"
KILL_AGENTS="${WHISPER_SERVER_DEMO_KILL_AGENTS:-12}"
KILL_CHUNKS="${WHISPER_SERVER_DEMO_KILL_CHUNKS:-60}"
CHUNK_RECORDS=1500
FAULTS="wire-corrupt=7,wire-tear=11,wire-kill=13,wire-stall=17:10"

WORK_DIR="${TMPDIR:-/tmp}/whisperd_server_$$"
mkdir -p "$WORK_DIR/dump" "$WORK_DIR/wire_journal" \
    "$WORK_DIR/wire_out" "$WORK_DIR/local_journal" \
    "$WORK_DIR/local_out" "$WORK_DIR/kill_journal" \
    "$WORK_DIR/kill_out"
cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2> /dev/null
    rm -rf "$WORK_DIR"
}
trap cleanup EXIT

wait_port_file() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        [ "$i" -le 100 ] || {
            echo "FAIL: server never wrote $1"; exit 1; }
        sleep 0.1
    done
}

# ---- leg 1+2: chaos load, then byte-identity replay ----------------

"$BIN_DIR/whisperd" --listen 127.0.0.1:0 \
    --port-file "$WORK_DIR/port.txt" \
    --tenants auto \
    --journal-dir "$WORK_DIR/wire_journal" \
    --out-dir "$WORK_DIR/wire_out" \
    --chunk-records $CHUNK_RECORDS --epoch-chunks 2 \
    --quota-chunks 16 --quota-jobs 65536 --max-hard 64 \
    > "$WORK_DIR/wire_server.txt" 2>&1 &
SRV_PID=$!
wait_port_file "$WORK_DIR/port.txt"
PORT=$(cat "$WORK_DIR/port.txt")

"$BIN_DIR/whisper_loadgen" --port "$PORT" \
    --agents "$AGENTS" --chunks-per-agent "$CHUNKS_PER_AGENT" \
    --chunk-records $CHUNK_RECORDS \
    --dump-dir "$WORK_DIR/dump" \
    --fault-spec "$FAULTS" \
    --timeout-ms 5000 --max-attempts 400 \
    --pull-every 2 \
    --json "$WORK_DIR/bench_chaos.json" \
    > "$WORK_DIR/chaos.txt" 2>&1 || {
    cat "$WORK_DIR/chaos.txt"
    echo "FAIL: loadgen lost chunks under the fault spec"; exit 1; }
cat "$WORK_DIR/chaos.txt"
grep -q "all chunks acknowledged" "$WORK_DIR/chaos.txt"

# The chaos was real: every fault class actually fired.
for fault in injected_corrupt injected_torn injected_kills \
    injected_stalls; do
    N=$(sed -n "s/.*\"$fault\": \([0-9]*\).*/\1/p" \
        "$WORK_DIR/bench_chaos.json")
    [ "${N:-0}" -ge 1 ] || {
        echo "FAIL: fault $fault never fired"; exit 1; }
done

# Graceful drain: SIGTERM must flush every queued chunk through
# training and write the per-tenant report before exit.
kill -TERM "$SRV_PID"
wait "$SRV_PID" || {
    echo "FAIL: server did not exit cleanly on SIGTERM"; exit 1; }
SRV_PID=""
cat "$WORK_DIR/wire_server.txt"
grep -q "whisperd per-tenant metrics" "$WORK_DIR/wire_server.txt"
DROPPED=$(sed -n \
    's/.*dropped-chunks=\([0-9]*\).*/\1/p' \
    "$WORK_DIR/wire_server.txt" | awk '{s += $1} END {print s}')
[ "${DROPPED:-0}" -eq 0 ] || {
    echo "FAIL: wire server dropped $DROPPED chunks"; exit 1; }

# Byte-identity: replay the dumped chunks through the in-process
# ingest path (same chunk size => same per-tenant chunk sequence).
"$BIN_DIR/whisperd" --chunks "$WORK_DIR/dump" \
    --tenants auto \
    --journal-dir "$WORK_DIR/local_journal" \
    --out-dir "$WORK_DIR/local_out" \
    --chunk-records $CHUNK_RECORDS --epoch-chunks 2 \
    --quota-chunks 1000000 --quota-jobs 65536 --max-hard 64 \
    > "$WORK_DIR/local.txt" 2>&1

WIRE_BUNDLES=$(ls "$WORK_DIR/wire_out" | grep -c '\.vhints$' ||
    true)
LOCAL_BUNDLES=$(ls "$WORK_DIR/local_out" | grep -c '\.vhints$' ||
    true)
[ "$WIRE_BUNDLES" -ge 1 ] || {
    echo "FAIL: wire run deployed no bundles"; exit 1; }
[ "$WIRE_BUNDLES" -eq "$LOCAL_BUNDLES" ] || {
    echo "FAIL: wire run deployed $WIRE_BUNDLES bundles," \
        "in-process run deployed $LOCAL_BUNDLES"; exit 1; }
for vhints in "$WORK_DIR"/wire_out/*.vhints; do
    app=$(basename "$vhints")
    cmp "$vhints" "$WORK_DIR/local_out/$app" || {
        echo "FAIL: $app differs between wire and in-process"
        exit 1; }
done

# ---- leg 3: kill -9 mid-load, restart, WAL resume ------------------

PORT=$((21000 + $$ % 20000))
"$BIN_DIR/whisperd" --listen 127.0.0.1:$PORT \
    --tenants auto \
    --journal-dir "$WORK_DIR/kill_journal" \
    --out-dir "$WORK_DIR/kill_out" \
    --chunk-records 1000 --epoch-chunks 2 \
    --quota-chunks 64 --quota-jobs 65536 --max-hard 64 \
    > "$WORK_DIR/kill_s1.txt" 2>&1 &
SRV_PID=$!
sleep 0.3
kill -0 "$SRV_PID" || {
    echo "FAIL: kill-leg server did not start (port $PORT taken?)"
    exit 1; }

"$BIN_DIR/whisper_loadgen" --port $PORT \
    --agents "$KILL_AGENTS" --chunks-per-agent "$KILL_CHUNKS" \
    --chunk-records 1000 \
    --timeout-ms 2000 --max-attempts 400 \
    --json "$WORK_DIR/bench_kill.json" \
    > "$WORK_DIR/kill_lg.txt" 2>&1 &
LG_PID=$!

# Kill once at least one tenant has journaled a deployment, so the
# restart has something to resume — adapts to TSan-speed machines.
i=0
while ! ls "$WORK_DIR/kill_journal" | grep -q journal; do
    i=$((i + 1))
    [ "$i" -le 300 ] || {
        echo "FAIL: no deployment journaled before load ended"
        exit 1; }
    kill -0 "$LG_PID" 2> /dev/null || break
    sleep 0.1
done
sleep 0.3
kill -9 "$SRV_PID"
wait "$SRV_PID" 2> /dev/null || true
sleep 0.5

"$BIN_DIR/whisperd" --listen 127.0.0.1:$PORT \
    --tenants auto \
    --journal-dir "$WORK_DIR/kill_journal" \
    --out-dir "$WORK_DIR/kill_out" \
    --chunk-records 1000 --epoch-chunks 2 \
    --quota-chunks 64 --quota-jobs 65536 --max-hard 64 \
    > "$WORK_DIR/kill_s2.txt" 2>&1 &
SRV_PID=$!

wait "$LG_PID" || {
    cat "$WORK_DIR/kill_lg.txt"
    echo "FAIL: clients lost chunks across the kill -9"; exit 1; }
cat "$WORK_DIR/kill_lg.txt"
grep -q "all chunks acknowledged" "$WORK_DIR/kill_lg.txt"

# The outage was real: every agent had to reconnect at least once
# beyond its initial connection.
RECONNECTS=$(sed -n 's/.*"reconnects": \([0-9]*\).*/\1/p' \
    "$WORK_DIR/bench_kill.json")
[ "${RECONNECTS:-0}" -gt "$KILL_AGENTS" ] || {
    echo "FAIL: reconnects=$RECONNECTS — the kill never" \
        "interrupted the load"; exit 1; }

kill -TERM "$SRV_PID"
wait "$SRV_PID" || {
    echo "FAIL: restarted server did not drain cleanly"; exit 1; }
SRV_PID=""
cat "$WORK_DIR/kill_s2.txt"
RESUMED=$(sed -n \
    's/^journal resumed epoch  *\([0-9]*\)$/\1/p' \
    "$WORK_DIR/kill_s2.txt")
[ "${RESUMED:-0}" -ge 1 ] || {
    echo "FAIL: restarted server resumed nothing from the WAL"
    exit 1; }

echo "whisperd server demo OK (chaos agents=$AGENTS," \
    "bundles=$WIRE_BUNDLES byte-identical," \
    "kill-9 resumed-epoch=$RESUMED reconnects=$RECONNECTS)"
