/**
 * @file
 * Parameterized property sweeps (TEST_P) across configuration
 * grids: folded-history correctness, formula-space invariants,
 * planted-correlation recovery at every candidate length, workload
 * determinism for every application, and cache/TAGE scaling laws.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "bp/simple_predictors.hh"
#include "bp/tage_scl.hh"
#include "core/formula_trainer.hh"
#include "core/whisper_trainer.hh"
#include "sim/experiment.hh"
#include "sim/sharded_runner.hh"
#include "trace/global_history.hh"
#include "uarch/cache.hh"
#include "util/rng.hh"
#include "workloads/app_workload.hh"

using namespace whisper;

// ---------------------------------------------------------------
// Folded history equals the reference fold for any (length, width).
// ---------------------------------------------------------------

class FoldedHistoryProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(FoldedHistoryProperty, IncrementalEqualsReference)
{
    auto [length, width] = GetParam();
    GlobalHistory h(2048);
    size_t v = h.addFoldedView(length, width);
    Rng rng(length * 131 + width);
    for (int i = 0; i < 600; ++i) {
        h.push(rng.nextBool(0.37));
        ASSERT_EQ(h.foldedValue(v), h.foldedHash(length, width))
            << "len=" << length << " width=" << width << " i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    LengthWidthGrid, FoldedHistoryProperty,
    ::testing::Combine(::testing::Values(1u, 5u, 8u, 11, 26u, 64u,
                                         303u, 1024u),
                       ::testing::Values(4u, 8u, 11u, 16u)));

// ---------------------------------------------------------------
// The whole geometric series behaves: every candidate length's
// planted formula is recovered by the trainer at that length.
// ---------------------------------------------------------------

class PlantedLengthProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PlantedLengthProperty, TrainerPicksThePlantedLength)
{
    unsigned lengthIdx = GetParam();
    WhisperConfig cfg;
    cfg.formulaFraction = 1.0;
    TruthTableCache cache(8);
    WhisperTrainer trainer(cfg, cache);

    BranchProfile profile(cfg);
    profile.markHard(0x40);
    BranchProfileEntry &e = profile.entry(0x40);
    BoolFormula f(0x5AC3, 8);
    Rng rng(lengthIdx + 1);
    for (int s = 0; s < 3000; ++s) {
        uint8_t hashed = static_cast<uint8_t>(rng.nextBelow(256));
        bool taken = f.evaluate(hashed);
        ++e.executions;
        if (taken)
            ++e.takenCount;
        for (size_t l = 0; l < e.byLength.size(); ++l) {
            e.byLength[l].record(
                l == lengthIdx
                    ? hashed
                    : static_cast<uint8_t>(rng.nextBelow(256)),
                taken);
        }
        e.raw4.record(rng.nextBelow(16), taken);
        e.raw8.record(rng.nextBelow(256), taken);
    }
    e.baselineMispredicts = 1000;

    TrainedHint hint;
    ASSERT_TRUE(trainer.trainBranch(e, profile.lengths(), hint));
    EXPECT_EQ(hint.hint.historyIdx, lengthIdx);
    EXPECT_EQ(hint.expectedMispredicts, 0u);
    EXPECT_EQ(hint.historyLength, profile.lengths()[lengthIdx]);
}

INSTANTIATE_TEST_SUITE_P(AllSeriesIndices, PlantedLengthProperty,
                         ::testing::Range(0u, 16u));

// ---------------------------------------------------------------
// Monotone encodings (AND/OR ops, no inversion) compute monotone
// functions; this is the ROMBF-compatibility property of the
// extended formula encoding.
// ---------------------------------------------------------------

class MonotoneEncodingProperty
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MonotoneEncodingProperty, MonotoneEncodingsAreMonotone)
{
    // Map the 7-bit parameter to an AND/OR-only encoding.
    unsigned pattern = GetParam();
    uint16_t enc = 0;
    for (unsigned n = 0; n < 7; ++n)
        enc |= ((pattern >> n) & 1u) << (2 * n);
    BoolFormula f(enc, 8);
    ASSERT_TRUE(f.isMonotone());

    for (unsigned v = 0; v < 256; ++v) {
        bool fv = f.evaluate(static_cast<uint8_t>(v));
        for (unsigned b = 0; b < 8; ++b) {
            if (v & (1u << b))
                continue;
            bool fw = f.evaluate(static_cast<uint8_t>(v | (1u << b)));
            ASSERT_TRUE(!fv || fw)
                << "enc=" << enc << " v=" << v << " b=" << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpPatterns, MonotoneEncodingProperty,
                         ::testing::Range(0u, 128u));

// ---------------------------------------------------------------
// Every application model is deterministic, replays after rewind,
// and exposes a sane record mix.
// ---------------------------------------------------------------

class AppProperty : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AppProperty, DeterministicReplayAndMix)
{
    const AppConfig &app = appByName(GetParam());
    AppWorkload a(app, 1, 8000), b(app, 1, 8000);
    BranchRecord ra, rb;
    uint64_t conds = 0, total = 0;
    while (a.next(ra)) {
        ASSERT_TRUE(b.next(rb));
        ASSERT_EQ(ra.pc, rb.pc);
        ASSERT_EQ(ra.taken, rb.taken);
        ASSERT_EQ(static_cast<int>(ra.kind),
                  static_cast<int>(rb.kind));
        ++total;
        if (ra.isConditional())
            ++conds;
    }
    EXPECT_EQ(total, 8000u);
    // Conditional branches dominate the stream.
    EXPECT_GT(static_cast<double>(conds) / total, 0.6);
}

TEST_P(AppProperty, TageAccuracyInPlausibleBand)
{
    const AppConfig &app = appByName(GetParam());
    AppWorkload trace(app, 0, 250000);
    auto tage = makeTage(64);
    auto stats = runPredictor(trace, *tage, 0.4);
    // Sanity band: far better than chance, below perfection.
    EXPECT_GT(stats.accuracy(), 0.85) << app.name;
    EXPECT_LT(stats.accuracy(), 0.9999) << app.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDataCenterApps, AppProperty,
    ::testing::Values("cassandra", "clang", "drupal",
                      "finagle-chirper", "finagle-http", "kafka",
                      "mediawiki", "mysql", "postgres", "python",
                      "tomcat", "wordpress"));

INSTANTIATE_TEST_SUITE_P(SomeSpecApps, AppProperty,
                         ::testing::Values("leela", "gcc", "xz"));

// ---------------------------------------------------------------
// Cache property: hit rate is monotone in capacity and in
// associativity for a fixed working set.
// ---------------------------------------------------------------

class CacheScalingProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheScalingProperty, MoreCapacityNeverHurtsMuch)
{
    auto [sizeKb, ways] = GetParam();
    Cache c(sizeKb * 1024ULL, ways);
    Cache c2(sizeKb * 2048ULL, ways);
    Rng rng(sizeKb * 7 + ways);
    uint64_t missSmall = 0, missLarge = 0;
    for (int i = 0; i < 30000; ++i) {
        uint64_t addr = rng.nextBelow(2048) * 64;
        missSmall += !c.access(addr);
        missLarge += !c2.access(addr);
    }
    EXPECT_LE(missLarge, missSmall + missSmall / 10);
}

INSTANTIATE_TEST_SUITE_P(
    SizeWaysGrid, CacheScalingProperty,
    ::testing::Combine(::testing::Values(8u, 32u, 64u),
                       ::testing::Values(2u, 8u, 16u)));

// ---------------------------------------------------------------
// TAGE budgets: storage strictly grows and accuracy on a capacity-
// stressing stream never degrades much with size.
// ---------------------------------------------------------------

class TageBudgetProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TageBudgetProperty, StorageMatchesBudgetClass)
{
    unsigned kb = GetParam();
    TageScl t(TageSclConfig::forBudgetKB(kb));
    double reportedKb =
        static_cast<double>(t.storageBits()) / 8.0 / 1024.0;
    EXPECT_GT(reportedKb, kb * 0.4) << kb;
    EXPECT_LT(reportedKb, kb * 2.2) << kb;
}

INSTANTIATE_TEST_SUITE_P(Budgets, TageBudgetProperty,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u,
                                           256u, 512u, 1024u));

// ---------------------------------------------------------------
// Sharded-runner property: for randomized traces, full-prefix
// sharded runs equal the serial runner at every job count, and
// bounded-warm runs are independent of the job count.
// ---------------------------------------------------------------

namespace
{

std::vector<BranchRecord>
randomShardTrace(uint64_t seed, uint64_t n)
{
    Rng rng(seed);
    std::vector<BranchRecord> records;
    records.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        BranchRecord rec;
        rec.pc = 0x4000 + 8 * rng.nextBelow(211);
        rec.kind = rng.nextBool(0.8) ? BranchKind::Conditional
                                     : BranchKind::Unconditional;
        rec.taken = (i % 5 < 2) ? (i % 2 == 0) : rng.nextBool(0.65);
        rec.instGap = static_cast<uint8_t>(1 + rng.nextBelow(9));
        records.push_back(rec);
    }
    return records;
}

class RecordsSource : public BranchSource
{
  public:
    explicit RecordsSource(const std::vector<BranchRecord> &records)
        : records_(records)
    {
    }

    bool
    next(BranchRecord &rec) override
    {
        if (pos_ >= records_.size())
            return false;
        rec = records_[pos_++];
        return true;
    }

    void rewind() override { pos_ = 0; }

  private:
    const std::vector<BranchRecord> &records_;
    size_t pos_ = 0;
};

class ShardedJobsProperty
    : public ::testing::TestWithParam<unsigned>
{
};

} // namespace

TEST_P(ShardedJobsProperty, RandomTraceSerialEquivalence)
{
    unsigned jobs = GetParam();
    auto records = randomShardTrace(1000 + jobs, 20000);

    GsharePredictor serial;
    RecordsSource src(records);
    PredictorRunStats want = runPredictor(src, serial, 0.0);

    GsharePredictor proto;
    ShardedRunConfig cfg;
    cfg.jobs = jobs;
    cfg.windowRecords = 4096;
    cfg.warmupRecords = ShardedRunConfig::kFullPrefix;
    auto exact = runPredictorSharded(records, proto, cfg);
    EXPECT_EQ(exact.total.instructions, want.instructions);
    EXPECT_EQ(exact.total.conditionals, want.conditionals);
    EXPECT_EQ(exact.total.mispredicts, want.mispredicts);

    // Bounded warm-up: compare against the jobs=1 run of the same
    // configuration, window by window.
    cfg.warmupRecords = 2048;
    auto bounded = runPredictorSharded(records, proto, cfg);
    cfg.jobs = 1;
    auto reference = runPredictorSharded(records, proto, cfg);
    ASSERT_EQ(bounded.perWindow.size(), reference.perWindow.size());
    for (size_t w = 0; w < bounded.perWindow.size(); ++w) {
        EXPECT_EQ(bounded.perWindow[w].mispredicts,
                  reference.perWindow[w].mispredicts)
            << "jobs=" << jobs << " window=" << w;
        EXPECT_EQ(bounded.perWindow[w].conditionals,
                  reference.perWindow[w].conditionals)
            << "jobs=" << jobs << " window=" << w;
    }
}

INSTANTIATE_TEST_SUITE_P(JobGrid, ShardedJobsProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));
