#!/bin/sh
# Timing smoke for the shard-parallel engine: with bounded warm-up
# the total work is independent of the job count, so --jobs 4 must
# finish within a scheduling-noise tolerance of --jobs 1 on any
# machine, and faster on multi-core ones. Also checks that the two
# runs report identical mispredict counts (job-count determinism at
# the CLI level).
set -e

BIN_DIR="$1"
WORK_DIR="${TMPDIR:-/tmp}/whisper_sim_speed_$$"
mkdir -p "$WORK_DIR"
trap 'rm -rf "$WORK_DIR"' EXIT

"$BIN_DIR/whisper_trace_gen" --app kafka --input 0 \
    --records 400000 --out "$WORK_DIR/speed.whrt"

# wall-seconds of the tage run from the shard-timing block; best of
# two runs each so a single descheduling blip cannot fail the test.
run_once() {
    "$BIN_DIR/whisper_eval" --trace "$WORK_DIR/speed.whrt" \
        --predictors tage --warmup 0.5 \
        --jobs "$1" --window 50000 --shard-warmup 25000
}

best_wall() {
    jobs="$1"
    out="$WORK_DIR/eval_j$jobs.txt"
    run_once "$jobs" > "$out"
    w1=$(sed -n 's/.*wall-seconds=\([0-9.]*\).*/\1/p' "$out")
    run_once "$jobs" > "$WORK_DIR/eval2_j$jobs.txt"
    w2=$(sed -n 's/.*wall-seconds=\([0-9.]*\).*/\1/p' \
        "$WORK_DIR/eval2_j$jobs.txt")
    awk -v a="$w1" -v b="$w2" 'BEGIN { print (a < b ? a : b) }'
}

T1=$(best_wall 1)
T4=$(best_wall 4)

# Identical mispredict counts regardless of the job count.
M1=$(awk '/tage-sc-l/ { print $NF }' "$WORK_DIR/eval_j1.txt" \
    | head -1)
M4=$(awk '/tage-sc-l/ { print $NF }' "$WORK_DIR/eval_j4.txt" \
    | head -1)
[ -n "$M1" ] && [ "$M1" = "$M4" ] || {
    echo "FAIL: mispredicts differ across job counts: $M1 vs $M4"
    exit 1
}

# 1.30x tolerance: on a single-core runner jobs=4 does the same
# work with extra thread churn; on multi-core it should be well
# under 1.0.
awk -v t1="$T1" -v t4="$T4" 'BEGIN {
    printf "jobs=1 wall=%.3fs  jobs=4 wall=%.3fs  ratio=%.2f\n", \
        t1, t4, (t1 > 0 ? t4 / t1 : 0)
    exit !(t4 <= t1 * 1.30 + 0.05)
}'

echo "sim speed smoke OK (mispredicts=$M1)"
