/**
 * @file
 * Tests for the multi-tenant whisperd subsystem: chunk routing,
 * per-tenant quota enforcement (drop-and-count, no deadlock),
 * deficit-round-robin fair-share scheduling, the per-app isolation
 * guarantee (fleet bundles byte-identical to solo bundles), per-app
 * journal resume, fault-injection behavior, and the zero-filled
 * per-tenant metrics dump. Registered under the `tenant.` ctest
 * prefix; the CI fleet-smoke job runs them under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/whisper_io.hh"
#include "service/fault_injection.hh"
#include "service/tenant_registry.hh"
#include "service/tenant_router.hh"
#include "sim/experiment.hh"
#include "workloads/app_workload.hh"

using namespace whisper;

namespace
{

std::vector<BranchRecord>
appRecords(const std::string &app, uint32_t input, uint64_t count)
{
    AppWorkload workload(appByName(app), input, count);
    std::vector<BranchRecord> records;
    records.reserve(count);
    BranchRecord rec;
    while (workload.next(rec))
        records.push_back(rec);
    return records;
}

/** Cut one app's stream into service chunks tagged with its name. */
std::vector<TraceChunk>
appChunks(const std::string &app, uint64_t perChunk, unsigned chunks)
{
    std::vector<BranchRecord> records =
        appRecords(app, 0, perChunk * chunks);
    std::vector<TraceChunk> out;
    for (unsigned i = 0; i < chunks; ++i) {
        TraceChunk chunk;
        chunk.app = app;
        chunk.sequence = i;
        chunk.records.assign(records.begin() + i * perChunk,
                             records.begin() + (i + 1) * perChunk);
        out.push_back(std::move(chunk));
    }
    return out;
}

TenantRouterConfig
smallConfig()
{
    TenantRouterConfig cfg;
    cfg.epochChunks = 2;
    cfg.trainWorkers = 2;
    cfg.tageBudgetKB = 16;
    cfg.profilePolicy.maxHardBranches = 48;
    cfg.verbose = false;
    cfg.trainTaskDeadlineMs = 0; // no supervisor: fastest
    return cfg;
}

/** Final deployed bundle bytes + epoch count per app after running
 * the given per-app chunk sequences through one router (arrivals
 * interleaved round-robin across apps, preserving per-app order). */
struct FleetResult
{
    std::map<std::string, std::vector<unsigned char>> bundleBytes;
    std::map<std::string, uint64_t> deployedEpoch;
    std::map<std::string, uint64_t> epochsRun;
};

FleetResult
runFleet(const TenantRouterConfig &cfg,
         const std::map<std::string, std::vector<TraceChunk>> &streams)
{
    TenantRouter router(cfg, globalTruthTables());
    for (const auto &[app, chunks] : streams)
        router.addTenant(app);
    router.start();
    size_t maxLen = 0;
    for (const auto &[app, chunks] : streams)
        maxLen = std::max(maxLen, chunks.size());
    for (size_t i = 0; i < maxLen; ++i) {
        for (const auto &[app, chunks] : streams) {
            if (i < chunks.size()) {
                TraceChunk copy = chunks[i];
                EXPECT_TRUE(router.offer(std::move(copy)))
                    << app << " chunk " << i << " dropped";
            }
        }
    }
    router.finish();

    FleetResult result;
    for (const Tenant *tenant : router.registry().all()) {
        if (HintStore::Snapshot snap = tenant->store.current())
            result.bundleBytes[tenant->name] =
                encodeVersionedBundle(*snap);
        result.deployedEpoch[tenant->name] = tenant->store.epoch();
        result.epochsRun[tenant->name] =
            tenant->metrics().epochsRun;
    }
    return result;
}

class TenantFaults : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

} // namespace

// --------------------------------------------------------------------
// FairShareScheduler (deficit round robin)
// --------------------------------------------------------------------

namespace
{

/** Bare tenant for scheduler-only tests. */
std::unique_ptr<Tenant>
bareTenant(const std::string &name, const TenantQuota &quota)
{
    return std::make_unique<Tenant>(name, quota, WhisperConfig{},
                                    makeTage(16),
                                    ChunkProfiler::Options{});
}

TrainJob
jobFor(Tenant *tenant, uint64_t index)
{
    TrainJob job;
    job.tenant = tenant;
    job.jobIndex = index;
    return job;
}

} // namespace

TEST(FairShare, EqualWeightsInterleaveTenants)
{
    TenantQuota quota;
    quota.maxPendingTrainJobs = 100;
    quota.maxInFlightTrainJobs = 100; // caps out of the way
    auto a = bareTenant("a", quota);
    auto b = bareTenant("b", quota);

    FairShareScheduler sched;
    sched.add(a.get());
    sched.add(b.get());
    for (uint64_t i = 0; i < 8; ++i)
        ASSERT_TRUE(sched.submit(jobFor(a.get(), i)));
    for (uint64_t i = 0; i < 2; ++i)
        ASSERT_TRUE(sched.submit(jobFor(b.get(), i)));
    sched.close();

    // A noisy tenant with 4x the jobs still alternates with the
    // quiet one until the quiet one drains: b's 2 jobs are served
    // within the first 4 slots, not after a's 8.
    std::vector<std::string> order;
    TrainJob job;
    while (sched.next(job)) {
        order.push_back(job.tenant->name);
        sched.done(job.tenant);
    }
    ASSERT_EQ(order.size(), 10u);
    std::vector<std::string> head(order.begin(), order.begin() + 4);
    EXPECT_EQ(head,
              (std::vector<std::string>{"a", "b", "a", "b"}));
    for (size_t i = 4; i < order.size(); ++i)
        EXPECT_EQ(order[i], "a");
}

TEST(FairShare, WeightsBuyProportionalService)
{
    TenantQuota heavy;
    heavy.weight = 3;
    heavy.maxPendingTrainJobs = 100;
    heavy.maxInFlightTrainJobs = 100;
    TenantQuota light;
    light.weight = 1;
    light.maxPendingTrainJobs = 100;
    light.maxInFlightTrainJobs = 100;
    auto a = bareTenant("heavy", heavy);
    auto b = bareTenant("light", light);

    FairShareScheduler sched;
    sched.add(a.get());
    sched.add(b.get());
    for (uint64_t i = 0; i < 6; ++i)
        ASSERT_TRUE(sched.submit(jobFor(a.get(), i)));
    for (uint64_t i = 0; i < 2; ++i)
        ASSERT_TRUE(sched.submit(jobFor(b.get(), i)));
    sched.close();

    std::vector<std::string> order;
    TrainJob job;
    while (sched.next(job)) {
        order.push_back(job.tenant->name);
        sched.done(job.tenant);
    }
    // Weight 3 serves three jobs per round to the light tenant's one.
    EXPECT_EQ(order, (std::vector<std::string>{
                         "heavy", "heavy", "heavy", "light",
                         "heavy", "heavy", "heavy", "light"}));
}

TEST(FairShare, InFlightCapDefersNotDrops)
{
    TenantQuota quota;
    quota.maxPendingTrainJobs = 100;
    quota.maxInFlightTrainJobs = 1;
    auto a = bareTenant("a", quota);
    auto b = bareTenant("b", quota);

    FairShareScheduler sched;
    sched.add(a.get());
    sched.add(b.get());
    ASSERT_TRUE(sched.submit(jobFor(a.get(), 0)));
    ASSERT_TRUE(sched.submit(jobFor(a.get(), 1)));
    ASSERT_TRUE(sched.submit(jobFor(b.get(), 0)));
    sched.close();

    TrainJob job;
    ASSERT_TRUE(sched.next(job));
    EXPECT_EQ(job.tenant->name, "a");
    // a is at its in-flight cap: the next job must come from b, and
    // a's second job only after done(a).
    ASSERT_TRUE(sched.next(job));
    EXPECT_EQ(job.tenant->name, "b");
    sched.done(a.get());
    ASSERT_TRUE(sched.next(job));
    EXPECT_EQ(job.tenant->name, "a");
    EXPECT_EQ(job.jobIndex, 1u);
    sched.done(b.get());
    sched.done(a.get());
    EXPECT_FALSE(sched.next(job));
}

TEST(FairShare, PendingQuotaRejectsExcessJobs)
{
    TenantQuota quota;
    quota.maxPendingTrainJobs = 2;
    auto a = bareTenant("a", quota);

    FairShareScheduler sched;
    sched.add(a.get());
    EXPECT_TRUE(sched.submit(jobFor(a.get(), 0)));
    EXPECT_TRUE(sched.submit(jobFor(a.get(), 1)));
    EXPECT_FALSE(sched.submit(jobFor(a.get(), 2)));
    EXPECT_EQ(sched.pending(), 2u);

    // Draining one pending job frees a slot.
    TrainJob job;
    ASSERT_TRUE(sched.next(job));
    sched.done(a.get());
    EXPECT_TRUE(sched.submit(jobFor(a.get(), 3)));
    sched.close();
    while (sched.next(job))
        sched.done(job.tenant);
}

// --------------------------------------------------------------------
// Routing and quotas
// --------------------------------------------------------------------

TEST(TenantRouting, ChunksReachTheirTenantOnly)
{
    TenantRouterConfig cfg = smallConfig();
    TenantRouter router(cfg, globalTruthTables());
    router.addTenant("kafka");
    router.addTenant("mysql");

    auto kafka = appChunks("kafka", 1000, 3);
    auto mysql = appChunks("mysql", 1000, 2);
    for (auto &c : kafka)
        EXPECT_TRUE(router.offer(std::move(c)));
    for (auto &c : mysql)
        EXPECT_TRUE(router.offer(std::move(c)));

    TraceChunk unknown;
    unknown.app = "not-a-registered-app";
    unknown.records = appRecords("kafka", 0, 100);
    EXPECT_FALSE(router.offer(std::move(unknown)));

    router.start();
    router.finish();
    ServiceMetrics m = router.metrics();
    EXPECT_EQ(m.tenantsRegistered, 2u);
    EXPECT_EQ(m.unknownAppChunks, 1u);
    EXPECT_EQ(m.tenants.at("kafka").chunksRouted, 3u);
    EXPECT_EQ(m.tenants.at("kafka").recordsRouted, 3000u);
    EXPECT_EQ(m.tenants.at("mysql").chunksRouted, 2u);
    EXPECT_EQ(m.tenants.at("kafka").chunksDropped, 0u);
}

TEST(TenantRouting, AutoRegisterCreatesTenantsOnFirstChunk)
{
    TenantRouterConfig cfg = smallConfig();
    cfg.autoRegister = true;
    TenantRouter router(cfg, globalTruthTables());
    auto chunks = appChunks("drupal", 1000, 2);
    for (auto &c : chunks)
        EXPECT_TRUE(router.offer(std::move(c)));
    EXPECT_NE(router.registry().find("drupal"), nullptr);
    router.start();
    router.finish();
    EXPECT_EQ(router.metrics().tenants.at("drupal").chunksRouted,
              2u);
}

TEST(TenantRouting, QueueQuotaDropsAndCountsWithoutBlocking)
{
    TenantRouterConfig cfg = smallConfig();
    TenantQuota quota;
    quota.maxQueuedChunks = 2;
    TenantRouter router(cfg, globalTruthTables());
    router.addTenant("kafka", quota);

    // The absorber is not running yet, so the queue cannot drain:
    // exactly maxQueuedChunks chunks fit, the rest must be dropped
    // and counted without ever blocking the router.
    auto chunks = appChunks("kafka", 500, 5);
    unsigned accepted = 0;
    for (auto &c : chunks)
        accepted += router.offer(std::move(c)) ? 1 : 0;
    EXPECT_EQ(accepted, 2u);

    // Starting and finishing drains the accepted chunks: no
    // deadlock, and the tallies survive.
    router.start();
    router.finish();
    ServiceMetrics m = router.metrics();
    EXPECT_EQ(m.tenants.at("kafka").chunksRouted, 2u);
    EXPECT_EQ(m.tenants.at("kafka").chunksDropped, 3u);
    EXPECT_EQ(m.tenants.at("kafka").recordsDropped, 1500u);
}

TEST(TenantRouting, TrainJobQuotaDropsAndCounts)
{
    TenantRouterConfig cfg = smallConfig();
    cfg.epochChunks = 1; // every absorbed chunk is an epoch boundary
    TenantQuota quota;
    quota.maxQueuedChunks = 64;
    quota.maxPendingTrainJobs = 1;
    TenantRouter router(cfg, globalTruthTables());
    router.addTenant("kafka", quota);

    // Queue many epoch-sized chunks before starting: the absorber
    // will emit train jobs far faster than one dispatcher can drain
    // them, so the pending-job quota must trip at least once.
    auto chunks = appChunks("kafka", 2000, 12);
    for (auto &c : chunks)
        ASSERT_TRUE(router.offer(std::move(c)));
    router.start();
    router.finish();

    ServiceMetrics m = router.metrics();
    const TenantMetrics &tm = m.tenants.at("kafka");
    EXPECT_GE(tm.trainJobsDropped, 1u);
    EXPECT_GE(tm.epochsRun, 1u);
    // Dropped jobs skip training, never lose data: every epoch that
    // did run trained on the full accumulated profile.
    EXPECT_EQ(tm.chunksDropped, 0u);
}

// --------------------------------------------------------------------
// Isolation: fleet == solo, byte for byte
// --------------------------------------------------------------------

TEST(TenantIsolation, FleetBundlesMatchSoloBundles)
{
    TenantRouterConfig cfg = smallConfig();
    // Accept every candidate: with these tiny windows validation
    // may reject all bundles, which would make the byte-identity
    // comparison vacuous (no deployments on either side).
    cfg.acceptMargin = -1.0;
    const std::vector<std::string> apps{"kafka", "mysql", "drupal"};
    std::map<std::string, std::vector<TraceChunk>> streams;
    for (const std::string &app : apps)
        streams[app] = appChunks(app, 4000, 5);

    FleetResult fleet = runFleet(cfg, streams);
    for (const std::string &app : apps) {
        std::map<std::string, std::vector<TraceChunk>> solo;
        solo[app] = streams[app];
        FleetResult alone = runFleet(cfg, solo);
        ASSERT_TRUE(fleet.bundleBytes.count(app)) << app;
        ASSERT_TRUE(alone.bundleBytes.count(app)) << app;
        EXPECT_EQ(fleet.deployedEpoch[app], alone.deployedEpoch[app])
            << app;
        EXPECT_EQ(fleet.epochsRun[app], alone.epochsRun[app]) << app;
        EXPECT_EQ(fleet.bundleBytes[app], alone.bundleBytes[app])
            << app << ": fleet bundle differs from solo bundle";
    }
}

TEST(TenantIsolation, AllTwelveAppsConcurrentMatchSolo)
{
    // The full mixed-fleet acceptance scenario: every data center
    // app of Table I streaming into one router, each at a different
    // rate (chunk count), every deployed bundle byte-identical to
    // the solo run at the same epoch.
    TenantRouterConfig cfg = smallConfig();
    cfg.acceptMargin = -1.0; // deploy every epoch (see above)
    cfg.profilePolicy.maxHardBranches = 24;
    std::map<std::string, std::vector<TraceChunk>> streams;
    unsigned which = 0;
    for (const AppConfig &app : dataCenterApps()) {
        unsigned chunks = 3 + (which++ % 3); // rates differ per app
        streams[app.name] = appChunks(app.name, 2500, chunks);
    }
    ASSERT_EQ(streams.size(), 12u);

    FleetResult fleet = runFleet(cfg, streams);
    for (const auto &[app, chunks] : streams) {
        std::map<std::string, std::vector<TraceChunk>> solo;
        solo[app] = chunks;
        FleetResult alone = runFleet(cfg, solo);
        ASSERT_TRUE(fleet.epochsRun.at(app) >= 1) << app;
        EXPECT_EQ(fleet.deployedEpoch.at(app),
                  alone.deployedEpoch.at(app))
            << app;
        EXPECT_EQ(fleet.bundleBytes[app], alone.bundleBytes[app])
            << app << ": fleet bundle differs from solo bundle";
    }
}

// --------------------------------------------------------------------
// Fairness under rate skew
// --------------------------------------------------------------------

TEST(TenantFairness, NoisyTenantCannotStarveOthers)
{
    // One tenant streams at 10x the rate of every other. With
    // deficit-round-robin scheduling each quiet tenant still
    // completes at least one training epoch within the run.
    TenantRouterConfig cfg = smallConfig();
    TenantQuota roomy;
    roomy.maxQueuedChunks = 64;
    roomy.maxPendingTrainJobs = 64;
    cfg.defaultQuota = roomy;

    std::map<std::string, std::vector<TraceChunk>> streams;
    streams["kafka"] = appChunks("kafka", 2000, 30); // noisy: 10x
    streams["mysql"] = appChunks("mysql", 2000, 3);
    streams["drupal"] = appChunks("drupal", 2000, 3);

    FleetResult fleet = runFleet(cfg, streams);
    // Every quiet tenant trains and proposes despite the noisy
    // neighbor; whether validation accepts the bundle is a data
    // question, not a fairness one, so assert epochs, not deploys.
    EXPECT_GE(fleet.epochsRun.at("kafka"), 10u);
    EXPECT_GE(fleet.epochsRun.at("mysql"), 1u);
    EXPECT_GE(fleet.epochsRun.at("drupal"), 1u);
}

// --------------------------------------------------------------------
// Per-tenant journals
// --------------------------------------------------------------------

TEST(TenantJournal, EachTenantResumesFromItsOwnJournal)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() /
                   ("tenant_journal_" +
                    std::to_string(::getpid()));
    fs::create_directories(dir);

    TenantRouterConfig cfg = smallConfig();
    cfg.journalDir = dir.string();
    std::map<std::string, std::vector<TraceChunk>> streams;
    streams["kafka"] = appChunks("kafka", 4000, 5);
    streams["mysql"] = appChunks("mysql", 4000, 5);

    std::map<std::string, uint64_t> deployedBefore;
    std::map<std::string, std::vector<unsigned char>> bytesBefore;
    {
        TenantRouter router(cfg, globalTruthTables());
        for (const auto &[app, chunks] : streams)
            router.addTenant(app);
        router.start();
        for (const auto &[app, chunks] : streams)
            for (const TraceChunk &c : chunks) {
                TraceChunk copy = c;
                router.offer(std::move(copy));
            }
        router.finish();
        for (const Tenant *t : router.registry().all()) {
            deployedBefore[t->name] = t->store.epoch();
            if (auto snap = t->store.current())
                bytesBefore[t->name] =
                    encodeVersionedBundle(*snap);
        }
        EXPECT_TRUE(fs::exists(dir / "kafka.journal"));
        EXPECT_TRUE(fs::exists(dir / "mysql.journal"));
    }

    // A restarted service must resume every tenant from its own
    // journal: same epoch, same deployed bytes, before any chunk.
    {
        TenantRouter router(cfg, globalTruthTables());
        for (const auto &[app, chunks] : streams)
            router.addTenant(app);
        for (const Tenant *t : router.registry().all()) {
            EXPECT_EQ(t->store.epoch(), deployedBefore[t->name])
                << t->name;
            EXPECT_EQ(t->metrics().journalResumedEpoch,
                      deployedBefore[t->name])
                << t->name;
            ASSERT_TRUE(t->store.current() != nullptr) << t->name;
            EXPECT_EQ(encodeVersionedBundle(*t->store.current()),
                      bytesBefore[t->name])
                << t->name;
        }
        // And keep training past the resumed epoch.
        router.start();
        for (const TraceChunk &c : streams["kafka"]) {
            TraceChunk copy = c;
            router.offer(std::move(copy));
        }
        router.finish();
        const Tenant *kafka = router.registry().find("kafka");
        EXPECT_GE(kafka->store.epoch(), deployedBefore["kafka"]);
        EXPECT_GE(kafka->metrics().epochsRun, 1u);
    }
    fs::remove_all(dir);
}

// --------------------------------------------------------------------
// Fault injection
// --------------------------------------------------------------------

TEST_F(TenantFaults, TrainingFailuresDegradeGracefully)
{
    ASSERT_TRUE(FaultInjector::instance().configure(
        "fail-train=0:1000000"));
    TenantRouterConfig cfg = smallConfig();
    cfg.trainTaskDeadlineMs = 5000;
    cfg.trainMaxAttempts = 2;
    std::map<std::string, std::vector<TraceChunk>> streams;
    streams["kafka"] = appChunks("kafka", 4000, 5);
    streams["mysql"] = appChunks("mysql", 4000, 5);

    FleetResult fleet = runFleet(cfg, streams);
    // The service completes every epoch despite the failing task;
    // the poisoned branch is degraded to baseline, not retried
    // forever, and both tenants still deploy.
    EXPECT_GE(fleet.epochsRun.at("kafka"), 2u);
    EXPECT_GE(fleet.epochsRun.at("mysql"), 2u);
    EXPECT_GT(FaultInjector::instance().trainFailures(), 0u);
}

TEST_F(TenantFaults, DeadTrainingWorkerIsSupervisedAway)
{
    ASSERT_TRUE(
        FaultInjector::instance().configure("kill-worker=0"));
    TenantRouterConfig cfg = smallConfig();
    cfg.trainWorkers = 2;
    cfg.trainTaskDeadlineMs = 100;
    std::map<std::string, std::vector<TraceChunk>> streams;
    streams["kafka"] = appChunks("kafka", 4000, 5);

    FleetResult fleet = runFleet(cfg, streams);
    EXPECT_GE(fleet.epochsRun.at("kafka"), 2u);
    EXPECT_GE(FaultInjector::instance().workerKills(), 1u);
}

// --------------------------------------------------------------------
// Metrics rendering
// --------------------------------------------------------------------

TEST(TenantMetricsDump, NoBlankCellsEvenWhenAllZero)
{
    ServiceMetrics m;
    m.tenantsRegistered = 2;
    m.tenants["idle-app"] = TenantMetrics{}; // never did anything
    TenantMetrics busy;
    busy.chunksRouted = 7;
    busy.epochsRun = 3;
    busy.lastValidationAccuracy = 0.5;
    m.tenants["busy-app"] = busy;

    std::ostringstream os;
    m.dump(os);
    std::string text = os.str();
    ASSERT_NE(text.find("whisperd per-tenant metrics"),
              std::string::npos);
    {
        // No cell may render as NaN ("tenant" contains the letters
        // n-a-n, so compare whole tokens, not substrings).
        std::istringstream toks(text);
        std::string tok;
        while (toks >> tok) {
            EXPECT_NE(tok, "nan");
            EXPECT_NE(tok, "-nan");
        }
    }

    // Every row of the per-tenant table must have exactly as many
    // whitespace-separated fields as the header: a zero-valued
    // counter prints "0", never an empty cell.
    std::istringstream lines(
        text.substr(text.find("whisperd per-tenant metrics")));
    std::string line;
    std::getline(lines, line); // title
    std::getline(lines, line); // header
    size_t headerFields = 0;
    {
        std::istringstream f(line);
        std::string tok;
        while (f >> tok)
            ++headerFields;
    }
    ASSERT_GT(headerFields, 10u);
    std::getline(lines, line); // separator
    unsigned rows = 0;
    while (std::getline(lines, line) && !line.empty()) {
        std::istringstream f(line);
        std::string tok;
        size_t fields = 0;
        while (f >> tok)
            ++fields;
        EXPECT_EQ(fields, headerFields) << "row: " << line;
        ++rows;
    }
    EXPECT_EQ(rows, 3u); // two tenants + the ALL roll-up
}

TEST(TenantMetricsDump, RollupSumsTenantRows)
{
    ServiceMetrics m;
    TenantMetrics a;
    a.chunksRouted = 3;
    a.epochsRun = 2;
    a.bundlesAccepted = 1;
    TenantMetrics b;
    b.chunksRouted = 5;
    b.epochsRun = 4;
    b.bundlesAccepted = 2;
    m.tenants["a"] = a;
    m.tenants["b"] = b;

    std::ostringstream os;
    m.dump(os);
    std::string text = os.str();
    // ALL row: 8 chunks, 6 epochs, 3 accepted.
    size_t allPos = text.find("\nALL");
    ASSERT_NE(allPos, std::string::npos);
    std::istringstream f(text.substr(allPos + 1));
    std::string label, chunks, records, dropC, dropJ, epochs, accept;
    f >> label >> chunks >> records >> dropC >> dropJ >> epochs >>
        accept;
    EXPECT_EQ(chunks, "8");
    EXPECT_EQ(epochs, "6");
    EXPECT_EQ(accept, "3");
}
