/**
 * @file
 * Unit tests for the BranchNet baseline (model, trainer, hybrid).
 */

#include <gtest/gtest.h>

#include <memory>

#include "bp/simple_predictors.hh"
#include "branchnet/branchnet_model.hh"
#include "branchnet/branchnet_predictor.hh"
#include "branchnet/branchnet_trainer.hh"
#include "util/rng.hh"

using namespace whisper;

namespace
{

/**
 * Samples whose label is the majority direction within one pooling
 * window — the occurrence-count correlation a sum-pooled CNN is
 * built to capture (BranchNet's design point).
 */
std::vector<BranchNetSample>
positionalSamples(unsigned pool, int n, uint64_t seed)
{
    constexpr unsigned L = BranchNetGeometry::kPoolLen;
    Rng rng(seed);
    std::vector<BranchNetSample> samples(n);
    for (auto &s : samples) {
        for (auto &t : s.tokens)
            t = static_cast<uint8_t>(rng.nextBelow(128));
        unsigned takenCount = 0;
        for (unsigned i = 0; i < L; ++i)
            takenCount += s.tokens[(pool % BranchNetGeometry::kPools) *
                                       L + i] & 1;
        s.taken = takenCount >= L / 2;
    }
    return samples;
}

} // namespace

TEST(BranchNetToken, SevenBits)
{
    for (uint64_t pc : {0x10ULL, 0x123456ULL, 0xFFFF0ULL}) {
        EXPECT_LT(branchNetToken(pc, false), 128);
        EXPECT_EQ(branchNetToken(pc, true) & 1, 1);
        EXPECT_EQ(branchNetToken(pc, false) & 1, 0);
    }
}

TEST(BranchNetGeometry, ModelFitsPaperBand)
{
    // Paper: 256B-2KB of metadata per branch.
    EXPECT_GE(BranchNetGeometry::modelBytes(), 256u);
    EXPECT_LE(BranchNetGeometry::modelBytes(), 2048u);
}

TEST(BranchNetModel, LearnsOccurrenceCorrelation)
{
    auto samples = positionalSamples(2, 3000, 77);
    BranchNetModel model(1);
    double acc = model.train(samples, 6, 0.05);
    EXPECT_GT(acc, 0.85);
}

TEST(BranchNetModel, CannotLearnPureNoise)
{
    Rng rng(5);
    std::vector<BranchNetSample> samples(2000);
    for (auto &s : samples) {
        for (auto &t : s.tokens)
            t = static_cast<uint8_t>(rng.nextBelow(128));
        s.taken = rng.nextBool(0.5);
    }
    BranchNetModel model(1);
    double acc = model.train(samples, 3, 0.05);
    EXPECT_LT(acc, 0.75); // memorization is limited by capacity
}

TEST(BranchNetModel, ForwardIsDeterministic)
{
    auto samples = positionalSamples(10, 100, 9);
    BranchNetModel model(42);
    double p1 = model.forward(samples[0].tokens);
    double p2 = model.forward(samples[0].tokens);
    EXPECT_DOUBLE_EQ(p1, p2);
    EXPECT_GT(p1, 0.0);
    EXPECT_LT(p1, 1.0);
}

TEST(SampleStore, TracksOnlyRequestedPcs)
{
    BranchNetSampleStore store(4);
    store.setTracked({0x10, 0x20});
    BranchNetSample s{};
    store.record(0x10, s);
    store.record(0x30, s);
    EXPECT_NE(store.find(0x10), nullptr);
    EXPECT_EQ(store.find(0x10)->size(), 1u);
    EXPECT_EQ(store.find(0x30), nullptr);
    EXPECT_TRUE(store.tracked(0x20));
    EXPECT_FALSE(store.tracked(0x30));
}

TEST(SampleStore, CapsSamples)
{
    BranchNetSampleStore store(3);
    store.setTracked({0x10});
    BranchNetSample s{};
    for (int i = 0; i < 10; ++i)
        store.record(0x10, s);
    EXPECT_EQ(store.find(0x10)->size(), 3u);
}

namespace
{

/** Profile + store with @p n hard branches, each CNN-learnable. */
void
makeLearnableSet(unsigned n, BranchProfile &profile,
                 BranchNetSampleStore &store)
{
    std::vector<uint64_t> pcs;
    for (unsigned i = 0; i < n; ++i)
        pcs.push_back(0x1000 + i * 16);
    store.setTracked(pcs);
    for (unsigned i = 0; i < n; ++i) {
        uint64_t pc = pcs[i];
        profile.markHard(pc);
        auto &e = profile.entry(pc);
        auto samples = positionalSamples(8 + i % 40, 300, 100 + i);
        for (const auto &s : samples) {
            store.record(pc, s);
            ++e.executions;
            if (s.taken)
                ++e.takenCount;
        }
        e.baselineMispredicts = 100 + n - i; // ranked by misses
    }
}

} // namespace

TEST(BranchNetTrainer, BudgetLimitsModels)
{
    WhisperConfig cfg;
    BranchProfile profile(cfg);
    BranchNetSampleStore store;
    makeLearnableSet(32, profile, store);

    uint64_t perModel = BranchNetGeometry::modelBytes();
    BranchNetTrainer small(8 * 1024);
    BranchNetTrainingStats stats;
    auto models = small.train(profile, store, &stats);
    EXPECT_LE(models.size(), 8 * 1024 / perModel);
    EXPECT_GT(models.size(), 0u);
    EXPECT_LE(stats.metadataBytes, 8 * 1024u);

    BranchNetTrainer unlimited(0, 64);
    auto all = unlimited.train(profile, store);
    EXPECT_GT(all.size(), models.size());
}

TEST(BranchNetTrainer, PrioritizesTopMispredictors)
{
    WhisperConfig cfg;
    BranchProfile profile(cfg);
    BranchNetSampleStore store;
    makeLearnableSet(16, profile, store);

    BranchNetTrainer tiny(2 * BranchNetGeometry::modelBytes());
    auto models = tiny.train(profile, store);
    ASSERT_EQ(models.size(), 2u);
    // Branch 0 has the most profiled mispredictions.
    EXPECT_EQ(models[0].pc, 0x1000u);
}

TEST(BranchNetPredictor, HybridRouting)
{
    WhisperConfig cfg;
    BranchProfile profile(cfg);
    BranchNetSampleStore store;
    makeLearnableSet(4, profile, store);
    BranchNetTrainer trainer(0, 8);
    auto models = trainer.train(profile, store);
    ASSERT_FALSE(models.empty());
    uint64_t covered = models[0].pc;

    BranchNetPredictor pred(std::make_unique<StaticPredictor>(true),
                            std::move(models), "test-bn");
    pred.predict(covered, true);
    pred.update(covered, true, true);
    EXPECT_EQ(pred.cnnPredictions(), 1u);

    // Uncovered branch -> base predictor (always true).
    EXPECT_TRUE(pred.predict(0x9999, false));
    pred.update(0x9999, false, true);
    EXPECT_EQ(pred.cnnPredictions(), 1u);
}

TEST(TokenHistory, SnapshotOrder)
{
    TokenHistory th;
    for (int i = 0; i < 70; ++i)
        th.push(0x100 + i * 16, i % 2 == 0);
    auto snap = th.snapshot();
    // Last pushed token must be the newest (back of the snapshot).
    EXPECT_EQ(snap.back(), branchNetToken(0x100 + 69 * 16, false));
    EXPECT_EQ(snap[0], branchNetToken(0x100 + 6 * 16, true));
}
