/**
 * @file
 * Scenario-diversity stress suite (registered under the `drift.`
 * ctest prefix): DriftSpec parsing, drifting/adversarial AppWorkload
 * semantics, CBP-style foreign-trace import, serial-vs-sharded
 * adaptive equivalence on drifting streams, and — the headline — an
 * end-to-end whisperd adaptation harness asserting concrete recovery
 * contracts:
 *
 *  - after a phase change, retraining + validated redeployment pulls
 *    the per-epoch mispredict rate back to within a stated bound of
 *    the pre-drift epoch;
 *  - adversarial decorrelation (correlated profiling prefix, then
 *    coin flips) triggers validation-gated rejection instead of
 *    deploying a regressing bundle, and the online predictor never
 *    does materially worse than plain TAGE on the decorrelated tail.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "service/chunk_profiler.hh"
#include "service/hint_store.hh"
#include "service/trace_stream.hh"
#include "service/training_pool.hh"
#include "sim/experiment.hh"
#include "sim/sharded_runner.hh"
#include "trace/cbp_reader.hh"
#include "workloads/app_workload.hh"

using namespace whisper;

namespace
{

/** Small custom app for the cheap semantic tests. */
AppConfig
smallApp()
{
    AppConfig app;
    app.name = "drift-unit";
    app.seed = 77;
    app.numRegions = 60;
    app.minBranchesPerRegion = 4;
    app.maxBranchesPerRegion = 12;
    app.numRequestTypes = 40;
    app.requestLenMin = 3;
    app.requestLenMax = 8;
    app.wBiased = 0.45;
    app.wLoop = 0.05;
    app.wShortHistory = 0.25;
    app.wHashedHistory = 0.20;
    app.wRandom = 0.05;
    app.maxCorrelationIdx = 8;
    return app;
}

std::vector<BranchRecord>
collect(BranchSource &src, uint64_t limit = ~0ULL)
{
    std::vector<BranchRecord> out;
    BranchRecord rec;
    while (out.size() < limit && src.next(rec))
        out.push_back(rec);
    return out;
}

std::vector<BranchRecord>
genDrift(const AppConfig &app, uint32_t input, uint64_t records,
         const DriftSpec &drift)
{
    AppWorkload workload(app, input, records, drift);
    return collect(workload);
}

::testing::AssertionResult
sameRecords(const std::vector<BranchRecord> &a,
            const std::vector<BranchRecord> &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure()
               << "size " << a.size() << " vs " << b.size();
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].pc != b[i].pc || a[i].target != b[i].target ||
            a[i].kind != b[i].kind || a[i].taken != b[i].taken ||
            a[i].instGap != b[i].instGap)
            return ::testing::AssertionFailure()
                   << "record " << i << " differs";
    }
    return ::testing::AssertionSuccess();
}

double
epochRate(const AdaptiveRunStats &stats, size_t epoch)
{
    const PredictorRunStats &ep = stats.perEpoch[epoch];
    return ep.conditionals
               ? static_cast<double>(ep.mispredicts) /
                     static_cast<double>(ep.conditionals)
               : 0.0;
}

/** One validation-gate outcome from the online loop. */
struct Proposal
{
    uint64_t epoch;
    bool accepted;
    double candAcc;
    double incAcc;
};
using ProposalLog = std::vector<Proposal>;

/**
 * whisperd's adaptive loop, the way the drift harness needs it: at
 * every @p trainEvery epoch boundary, retrain on the most recent
 * @p historyWindows windows with a FRESH streaming profiler (a
 * cumulative profile would dilute post-drift statistics with
 * pre-drift history), validate candidate vs incumbent on the newest
 * window, and propose to the store with @p margin. The fleet
 * predictor is the consultant-managed Whisper-over-TAGE, swapped in
 * place on every accepted deployment.
 *
 * @p trainPrune enables the sparse-correlation screen; @p warmStart
 * seeds each retraining with the deployed bundle's hints (whisperd's
 * production defaults). @p trainTotals accumulates per-retrain
 * TrainingStats counters (warmHits/coldSearches/formulasScored).
 */
AdaptiveRunStats
runOnlineWhisperd(const std::vector<BranchRecord> &stream,
                  uint64_t window, unsigned trainEvery,
                  unsigned historyWindows, double margin,
                  const ExperimentConfig &cfg, HintStore &store,
                  ProposalLog *proposals = nullptr,
                  bool trainPrune = false, bool warmStart = false,
                  TrainingStats *trainTotals = nullptr)
{
    WhisperTrainer trainer(cfg.whisper, globalTruthTables());
    if (trainPrune)
        trainer.setScreen(ScreenConfig{});
    HintInjector injector(cfg.injector);
    TrainingPool pool(2);
    HintStoreConsultant consultant(
        store, cfg.whisper, globalTruthTables(),
        [&] { return makeTage(cfg.tageBudgetKB); });

    auto evalWindow = [&](const std::vector<BranchRecord> &records,
                          const HintBundle *bundle) {
        ChunkSource src(records);
        std::unique_ptr<BranchPredictor> pred;
        if (bundle) {
            pred = std::make_unique<WhisperPredictor>(
                makeTage(cfg.tageBudgetKB), cfg.whisper,
                globalTruthTables(), bundle->hints,
                bundle->placements);
        } else {
            pred = makeTage(cfg.tageBudgetKB);
        }
        return runPredictor(src, *pred);
    };

    auto onEpoch = [&](uint64_t nextEpoch) -> BranchPredictor * {
        if (nextEpoch % trainEvery == 0) {
            size_t to =
                std::min<size_t>(stream.size(), nextEpoch * window);
            size_t span = std::min<size_t>(
                to, static_cast<size_t>(historyWindows) * window);
            std::vector<BranchRecord> recent(
                stream.begin() + (to - span), stream.begin() + to);

            ChunkProfiler::Options opt;
            opt.maxHardBranches = cfg.profile.maxHardBranches;
            opt.statsWarmupRecords = window / 2;
            ChunkProfiler profiler(cfg.whisper,
                                   makeTage(cfg.tageBudgetKB), opt);
            BranchProfile profile = profiler.profileChunk(recent);
            if (profile.numBranches() > 0) {
                HintBundle candidate;
                HintStore::Snapshot seed =
                    warmStart ? store.current() : nullptr;
                TrainingStats tstats;
                candidate.hints = pool.train(
                    trainer, profile,
                    seed ? &seed->bundle.hints : nullptr, &tstats);
                if (trainTotals) {
                    trainTotals->branchesConsidered +=
                        tstats.branchesConsidered;
                    trainTotals->warmHits += tstats.warmHits;
                    trainTotals->coldSearches += tstats.coldSearches;
                    trainTotals->formulasScored +=
                        tstats.formulasScored;
                }
                ChunkSource placeSrc(recent);
                candidate.placements =
                    injector.place(placeSrc, candidate.hints);

                size_t newestSpan = std::min<size_t>(to, window);
                std::vector<BranchRecord> newest(
                    stream.begin() + (to - newestSpan),
                    stream.begin() + to);
                HintStore::Snapshot incumbent = store.current();
                auto incStats = evalWindow(
                    newest, incumbent ? &incumbent->bundle
                                      : nullptr);
                auto candStats = evalWindow(newest, &candidate);
                double candAcc = candStats.accuracy();
                double incAcc = incStats.accuracy();
                bool accepted = store.propose(std::move(candidate),
                                              candAcc, incAcc,
                                              margin);
                if (proposals)
                    proposals->push_back(
                        {nextEpoch, accepted, candAcc, incAcc});
            }
        }
        return consultant.refresh(nextEpoch);
    };

    ChunkSource src(stream);
    return runPredictorAdaptive(src, consultant.predictor(), window,
                                onEpoch);
}

} // namespace

// --------------------------------------------------------------------
// DriftSpec parsing
// --------------------------------------------------------------------

TEST(Spec, ParsesPhaseSpec)
{
    DriftSpec spec;
    std::string error;
    ASSERT_TRUE(parseDriftSpec(
        "phase:period=50000,phases=3,intensity=0.4,seed=9", &spec,
        &error))
        << error;
    EXPECT_EQ(spec.kind, DriftKind::Phase);
    EXPECT_EQ(spec.periodRecords, 50'000u);
    EXPECT_EQ(spec.phases, 3u);
    EXPECT_DOUBLE_EQ(spec.intensity, 0.4);
    EXPECT_EQ(spec.seed, 9u);
    EXPECT_TRUE(spec.active());
}

TEST(Spec, ParsesAdversarialWithDefaults)
{
    DriftSpec spec;
    std::string error;
    ASSERT_TRUE(parseDriftSpec("adversarial:period=1000", &spec,
                               &error))
        << error;
    EXPECT_EQ(spec.kind, DriftKind::Adversarial);
    EXPECT_EQ(spec.periodRecords, 1'000u);
    EXPECT_DOUBLE_EQ(spec.decorrelate, 1.0);

    ASSERT_TRUE(parseDriftSpec("adversarial:period=1000,frac=0.25",
                               &spec, &error))
        << error;
    EXPECT_DOUBLE_EQ(spec.decorrelate, 0.25);

    ASSERT_TRUE(parseDriftSpec("none", &spec, &error)) << error;
    EXPECT_FALSE(spec.active());
}

TEST(Spec, RejectsMalformedSpecs)
{
    DriftSpec spec;
    std::string error;
    const char *bad[] = {
        "wobble:period=5",         // unknown kind
        "phase",                   // active kind without a period
        "phase:period=0",          // zero period
        "phase:period=5,phases=0", // zero phases
        "phase:period=5,bogus=1",  // unknown key
        "phase:period=x",          // non-numeric value
        "phase:intensity=1.5",     // out-of-range fraction
        "phase:period",            // missing '='
    };
    for (const char *s : bad) {
        error.clear();
        EXPECT_FALSE(parseDriftSpec(s, &spec, &error)) << s;
        EXPECT_FALSE(error.empty()) << s;
    }
}

TEST(Spec, DescribeRoundTrips)
{
    for (const char *s :
         {"none", "phase:period=100,phases=2,intensity=0.3,seed=1",
          "gradual:period=64,phases=5,intensity=1,seed=0",
          "adversarial:period=9,frac=0.5,seed=3"}) {
        DriftSpec spec;
        std::string error;
        ASSERT_TRUE(parseDriftSpec(s, &spec, &error)) << error;
        DriftSpec reparsed;
        ASSERT_TRUE(parseDriftSpec(describeDriftSpec(spec),
                                   &reparsed, &error))
            << error;
        EXPECT_EQ(reparsed.kind, spec.kind) << s;
        EXPECT_EQ(reparsed.periodRecords, spec.periodRecords) << s;
        EXPECT_EQ(reparsed.phases, spec.phases) << s;
        EXPECT_DOUBLE_EQ(reparsed.intensity, spec.intensity) << s;
        EXPECT_DOUBLE_EQ(reparsed.decorrelate, spec.decorrelate)
            << s;
        EXPECT_EQ(reparsed.seed, spec.seed) << s;
    }
}

// --------------------------------------------------------------------
// Drifting workload semantics
// --------------------------------------------------------------------

TEST(Workload, NoneSpecMatchesBaseExactly)
{
    AppConfig app = smallApp();
    const uint64_t n = 40'000;
    AppWorkload base(app, 1, n);
    AppWorkload none(app, 1, n, DriftSpec{});
    EXPECT_TRUE(sameRecords(collect(base), collect(none)));
}

TEST(Workload, DriftingStreamIsDeterministicAndRewindable)
{
    AppConfig app = smallApp();
    DriftSpec drift;
    drift.kind = DriftKind::Phase;
    drift.periodRecords = 10'000;
    drift.phases = 3;
    drift.intensity = 0.6;
    const uint64_t n = 45'000;

    AppWorkload a(app, 0, n, drift);
    std::vector<BranchRecord> first = collect(a);
    a.rewind();
    std::vector<BranchRecord> second = collect(a);
    EXPECT_TRUE(sameRecords(first, second));

    AppWorkload b(app, 0, n, drift);
    EXPECT_TRUE(sameRecords(first, collect(b)));
}

TEST(Workload, PhaseZeroPrefixMatchesBase)
{
    AppConfig app = smallApp();
    DriftSpec drift;
    drift.kind = DriftKind::Phase;
    drift.periodRecords = 15'000;
    drift.phases = 2;
    drift.intensity = 0.8;
    const uint64_t n = 45'000;

    std::vector<BranchRecord> base = genDrift(app, 0, n, DriftSpec{});
    std::vector<BranchRecord> drifted = genDrift(app, 0, n, drift);

    // Phase 0 IS the base view: identical until the first boundary.
    std::vector<BranchRecord> basePrefix(
        base.begin(), base.begin() + drift.periodRecords);
    std::vector<BranchRecord> driftPrefix(
        drifted.begin(), drifted.begin() + drift.periodRecords);
    EXPECT_TRUE(sameRecords(basePrefix, driftPrefix));
    // ...and genuinely different afterwards.
    EXPECT_FALSE(sameRecords(base, drifted));
}

TEST(Workload, PhaseCyclesBackToBaseView)
{
    AppConfig app = smallApp();
    DriftSpec drift;
    drift.kind = DriftKind::Phase;
    drift.periodRecords = 10'000;
    drift.phases = 2;
    drift.intensity = 0.9;

    AppWorkload base(app, 0, 50'000);
    AppWorkload drifted(app, 0, 50'000, drift);

    // Drive into the middle of the rotated phase: some dynamic site
    // state must differ from base.
    collect(drifted, 15'000);
    const auto &bs = base.sites();
    const auto &ds = drifted.sites();
    ASSERT_EQ(bs.size(), ds.size());
    size_t differing = 0;
    for (size_t i = 0; i < bs.size(); ++i) {
        if (bs[i].param != ds[i].param ||
            bs[i].noise != ds[i].noise ||
            bs[i].formula.encoding() != ds[i].formula.encoding())
            ++differing;
    }
    EXPECT_GT(differing, 0u);

    // Drive into the third segment (phase 2 % 2 == 0): the base
    // view must be re-installed exactly.
    collect(drifted, 6'000); // now past record 21000
    for (size_t i = 0; i < bs.size(); ++i) {
        ASSERT_EQ(bs[i].param, drifted.sites()[i].param) << i;
        ASSERT_EQ(bs[i].noise, drifted.sites()[i].noise) << i;
        ASSERT_EQ(bs[i].formula.encoding(),
                  drifted.sites()[i].formula.encoding())
            << i;
    }
}

TEST(Workload, GradualFirstStepMatchesBaseThenMorphs)
{
    AppConfig app = smallApp();
    DriftSpec drift;
    drift.kind = DriftKind::Gradual;
    drift.periodRecords = 32'000; // 1000 records per blend step
    drift.phases = 2;
    drift.intensity = 0.7;
    const uint64_t n = 40'000;

    std::vector<BranchRecord> base = genDrift(app, 0, n, DriftSpec{});
    std::vector<BranchRecord> drifted = genDrift(app, 0, n, drift);

    // Blend step 0 is alpha=0, i.e. exactly phase 0 == base.
    uint64_t step = drift.periodRecords / 32;
    std::vector<BranchRecord> basePrefix(base.begin(),
                                         base.begin() + step);
    std::vector<BranchRecord> driftPrefix(drifted.begin(),
                                          drifted.begin() + step);
    EXPECT_TRUE(sameRecords(basePrefix, driftPrefix));
    EXPECT_FALSE(sameRecords(base, drifted));
}

TEST(Workload, GradualKeepsDynamicsInRangeAndStructureFixed)
{
    AppConfig app = smallApp();
    DriftSpec drift;
    drift.kind = DriftKind::Gradual;
    drift.periodRecords = 8'000;
    drift.phases = 4;
    drift.intensity = 1.0;

    AppWorkload base(app, 0, 1);
    AppWorkload drifted(app, 0, 64'000, drift);
    for (int leg = 0; leg < 8; ++leg) {
        collect(drifted, 8'000);
        const auto &bs = base.sites();
        const auto &ds = drifted.sites();
        ASSERT_EQ(bs.size(), ds.size());
        for (size_t i = 0; i < ds.size(); ++i) {
            // Dynamic view stays sane at every blend step...
            EXPECT_GE(ds[i].param, 0.0) << i;
            EXPECT_LE(ds[i].param, 1.0) << i;
            EXPECT_GE(ds[i].noise, 0.0) << i;
            EXPECT_LE(ds[i].noise, 0.5) << i;
            // ...and the static structure never moves.
            EXPECT_EQ(ds[i].pc, bs[i].pc) << i;
            EXPECT_EQ(ds[i].kind, bs[i].kind) << i;
            EXPECT_EQ(ds[i].loopPeriod, bs[i].loopPeriod) << i;
            EXPECT_EQ(ds[i].histLen, bs[i].histLen) << i;
        }
    }
}

TEST(Workload, AdversarialPrefixMatchesBaseAndFracZeroIsInert)
{
    AppConfig app = smallApp();
    DriftSpec drift;
    drift.kind = DriftKind::Adversarial;
    drift.periodRecords = 20'000;
    const uint64_t n = 40'000;

    std::vector<BranchRecord> base = genDrift(app, 0, n, DriftSpec{});
    std::vector<BranchRecord> adv = genDrift(app, 0, n, drift);
    std::vector<BranchRecord> basePrefix(
        base.begin(), base.begin() + drift.periodRecords);
    std::vector<BranchRecord> advPrefix(
        adv.begin(), adv.begin() + drift.periodRecords);
    EXPECT_TRUE(sameRecords(basePrefix, advPrefix));
    EXPECT_FALSE(sameRecords(base, adv));

    // frac=0 selects no site: the whole stream is the base stream.
    drift.decorrelate = 0.0;
    EXPECT_TRUE(sameRecords(base, genDrift(app, 0, n, drift)));
}

TEST(Workload, AdversarialDecorrelationDegradesTage)
{
    const AppConfig &app = appByName("kafka");
    DriftSpec drift;
    drift.kind = DriftKind::Adversarial;
    drift.periodRecords = 120'000;
    drift.decorrelate = 1.0;
    const uint64_t n = 240'000, window = 60'000;

    std::vector<BranchRecord> base = genDrift(app, 0, n, DriftSpec{});
    std::vector<BranchRecord> adv = genDrift(app, 0, n, drift);

    auto runTage = [&](const std::vector<BranchRecord> &stream) {
        auto tage = makeTage(64);
        ChunkSource src(stream);
        return runPredictorAdaptive(src, *tage, window, nullptr);
    };
    AdaptiveRunStats baseRun = runTage(base);
    AdaptiveRunStats advRun = runTage(adv);
    ASSERT_EQ(baseRun.perEpoch.size(), 4u);
    ASSERT_EQ(advRun.perEpoch.size(), 4u);

    // Identical prefix -> identical predictor trajectory there.
    EXPECT_EQ(advRun.perEpoch[0].mispredicts,
              baseRun.perEpoch[0].mispredicts);
    EXPECT_EQ(advRun.perEpoch[1].mispredicts,
              baseRun.perEpoch[1].mispredicts);
    // Decorrelated tail: even an online-adapting TAGE must lose
    // clearly measurable accuracy on coin-flip traffic.
    EXPECT_GT(epochRate(advRun, 3), epochRate(baseRun, 3) + 0.02);
}

// --------------------------------------------------------------------
// CBP-style foreign-trace import
// --------------------------------------------------------------------

TEST(Cbp, RoundTripPreservesRecordsAndMetadata)
{
    AppConfig app = smallApp();
    AppWorkload workload(app, 2, 5'000);
    BranchTrace trace("drift-unit", 2);
    trace.fill(workload, 5'000);

    std::string path = ::testing::TempDir() + "drift_rt.cbp";
    ASSERT_TRUE(saveCbpTrace(trace, path));

    BranchTrace loaded;
    IoStatus st = loadCbpTrace(path, &loaded);
    ASSERT_TRUE(st) << st.message;
    EXPECT_EQ(loaded.app(), trace.app());
    EXPECT_EQ(loaded.inputId(), trace.inputId());
    ASSERT_EQ(loaded.size(), trace.size());
    EXPECT_EQ(loaded.instructions(), trace.instructions());
    EXPECT_EQ(loaded.conditionals(), trace.conditionals());
    for (size_t i = 0; i < trace.size(); ++i) {
        ASSERT_EQ(loaded[i].pc, trace[i].pc) << i;
        ASSERT_EQ(loaded[i].target, trace[i].target) << i;
        ASSERT_EQ(loaded[i].kind, trace[i].kind) << i;
        ASSERT_EQ(loaded[i].taken, trace[i].taken) << i;
        ASSERT_EQ(loaded[i].instGap, trace[i].instGap) << i;
    }
    std::remove(path.c_str());
}

TEST(Cbp, FileSourceStreamsBehindBranchSource)
{
    AppConfig app = smallApp();
    AppWorkload workload(app, 0, 3'000);
    BranchTrace trace("drift-unit", 0);
    trace.fill(workload, 3'000);
    std::string path = ::testing::TempDir() + "drift_src.cbp";
    ASSERT_TRUE(saveCbpTrace(trace, path));

    CbpFileSource source(path);
    ASSERT_TRUE(source.status()) << source.status().message;
    std::vector<BranchRecord> streamed = collect(source);
    ASSERT_TRUE(source.status()) << source.status().message;
    EXPECT_EQ(source.app(), "drift-unit");

    std::vector<BranchRecord> expected(trace.begin(), trace.end());
    EXPECT_TRUE(sameRecords(streamed, expected));

    // Multi-pass consumers rewind the file.
    source.rewind();
    EXPECT_TRUE(sameRecords(collect(source), expected));
    std::remove(path.c_str());
}

TEST(Cbp, MinimalTwoColumnFormatImportsWithDefaults)
{
    std::string path = ::testing::TempDir() + "drift_min.cbp";
    {
        std::ofstream out(path);
        out << "# a hand-written foreign trace\n"
            << "0x4000a0 1\n"
            << "4000b0 0\n"
            << "4000a0 T\n"
            << "4000c0 N\n";
    }
    BranchTrace trace;
    IoStatus st = loadCbpTrace(path, &trace);
    ASSERT_TRUE(st) << st.message;
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace[0].pc, 0x4000a0u);
    EXPECT_TRUE(trace[0].taken);
    EXPECT_EQ(trace[0].target, 0x4000a4u); // pc + 4 default
    EXPECT_EQ(trace[0].kind, BranchKind::Conditional);
    EXPECT_FALSE(trace[1].taken);
    EXPECT_TRUE(trace[2].taken);
    EXPECT_FALSE(trace[3].taken);
    EXPECT_EQ(trace.conditionals(), 4u);
    std::remove(path.c_str());
}

TEST(Cbp, DistinguishesMissingFromMalformed)
{
    BranchTrace trace;
    IoStatus missing =
        loadCbpTrace(::testing::TempDir() + "no_such.cbp", &trace);
    EXPECT_TRUE(missing.missing()) << missing.message;

    std::string path = ::testing::TempDir() + "drift_bad.cbp";
    {
        std::ofstream out(path);
        out << "4000a0 1\n"
            << "not-a-pc 1\n";
    }
    IoStatus corrupt = loadCbpTrace(path, &trace);
    EXPECT_TRUE(corrupt.corrupt());
    EXPECT_NE(corrupt.message.find("line 2"), std::string::npos)
        << corrupt.message;

    CbpFileSource source(path);
    BranchRecord rec;
    EXPECT_TRUE(source.next(rec)); // line 1 parses
    EXPECT_FALSE(source.next(rec));
    EXPECT_TRUE(source.status().corrupt());
    std::remove(path.c_str());
}

// --------------------------------------------------------------------
// Serial vs sharded adaptive equivalence under drift
// --------------------------------------------------------------------

TEST(Equivalence, SerialVsShardedAdaptiveOnDriftingStream)
{
    const AppConfig &app = appByName("kafka");
    DriftSpec drift;
    drift.kind = DriftKind::Phase;
    drift.periodRecords = 30'000;
    drift.phases = 3;
    drift.intensity = 0.6;
    const uint64_t n = 120'000, window = 20'000;

    std::vector<BranchRecord> stream = genDrift(app, 0, n, drift);

    auto serialTage = makeTage(64);
    ChunkSource src(stream);
    AdaptiveRunStats serial =
        runPredictorAdaptive(src, *serialTage, window, nullptr);

    ShardedRunConfig scfg;
    scfg.jobs = 2;
    scfg.warmupRecords = ShardedRunConfig::kFullPrefix;
    auto shardedTage = makeTage(64);
    AdaptiveShardedRunStats sharded = runPredictorAdaptiveSharded(
        stream, *shardedTage, window, nullptr, scfg);

    ASSERT_EQ(sharded.stats.perEpoch.size(), serial.perEpoch.size());
    for (size_t e = 0; e < serial.perEpoch.size(); ++e) {
        EXPECT_EQ(sharded.stats.perEpoch[e].instructions,
                  serial.perEpoch[e].instructions)
            << "epoch " << e;
        EXPECT_EQ(sharded.stats.perEpoch[e].conditionals,
                  serial.perEpoch[e].conditionals)
            << "epoch " << e;
        EXPECT_EQ(sharded.stats.perEpoch[e].mispredicts,
                  serial.perEpoch[e].mispredicts)
            << "epoch " << e;
    }
    EXPECT_EQ(sharded.stats.total.mispredicts,
              serial.total.mispredicts);
}

// --------------------------------------------------------------------
// End-to-end adaptation contracts (the headline)
// --------------------------------------------------------------------

TEST(Recovery, RedeployRestoresAccuracyAfterPhaseChange)
{
    ExperimentConfig cfg;
    cfg.profile.maxHardBranches = 256;

    const AppConfig &app = appByName("kafka");
    DriftSpec drift;
    drift.kind = DriftKind::Phase;
    drift.periodRecords = 120'000;
    drift.phases = 2;
    drift.intensity = 0.7;
    const uint64_t total = 480'000, window = 30'000;
    // Epoch layout: 0-3 phase 0, 4-7 phase 1, 8-11 phase 0,
    // 12-15 phase 1; retraining every 2 epochs on the last 2
    // windows.

    std::vector<BranchRecord> stream =
        genDrift(app, 0, total, drift);

    HintStore store;
    AdaptiveRunStats online = runOnlineWhisperd(
        stream, window, /*trainEvery=*/2, /*historyWindows=*/2,
        /*margin=*/0.0, cfg, store);

    ASSERT_EQ(online.perEpoch.size(), 16u);
    // The service must actually deploy (initially, and again after
    // the drift). Deployments are in-place hint swaps on the warm
    // consultant-managed predictor, so predictorSwaps stays 0.
    EXPECT_GE(store.accepted(), 2u);
    EXPECT_EQ(online.predictorSwaps, 0u);

    double preDrift = epochRate(online, 3);
    // Contract 1: the phase change visibly hurts first (stale
    // behavior right after the boundary)...
    double spike = std::max(epochRate(online, 4),
                            epochRate(online, 5));
    EXPECT_GT(spike, preDrift);
    // Contract 2: ...and by the end of the drifted segment,
    // retraining + redeployment has pulled the epoch mispredict
    // rate back to within 2 points of the pre-drift epoch.
    EXPECT_LE(epochRate(online, 7), preDrift + 0.02);
    // Contract 3: returning to the original phase recovers to
    // within 1 point of the original epoch rate.
    EXPECT_LE(epochRate(online, 11), preDrift + 0.01);
}

TEST(Recovery, WarmStartDoesNotSlowRecoveryAfterDrift)
{
    // The warm-start leg of the recovery contract: with pruning and
    // warm seeding enabled (whisperd's production defaults), the
    // adaptive loop must recover from the same phase change within
    // the SAME bounds as the cold loop above. The branch-level gates
    // re-validate every seed on the fresh post-drift profile, so a
    // decorrelated seed falls through to the cold search instead of
    // pinning the service to a stale formula.
    ExperimentConfig cfg;
    cfg.profile.maxHardBranches = 256;

    const AppConfig &app = appByName("kafka");
    DriftSpec drift;
    drift.kind = DriftKind::Phase;
    drift.periodRecords = 120'000;
    drift.phases = 2;
    drift.intensity = 0.7;
    const uint64_t total = 480'000, window = 30'000;

    std::vector<BranchRecord> stream =
        genDrift(app, 0, total, drift);

    HintStore store;
    TrainingStats totals;
    AdaptiveRunStats online = runOnlineWhisperd(
        stream, window, /*trainEvery=*/2, /*historyWindows=*/2,
        /*margin=*/0.0, cfg, store, nullptr, /*trainPrune=*/true,
        /*warmStart=*/true, &totals);

    ASSERT_EQ(online.perEpoch.size(), 16u);
    EXPECT_GE(store.accepted(), 2u);
    // The warm path must actually engage across the run, and the
    // accounting must balance.
    EXPECT_GT(totals.warmHits, 0u);
    EXPECT_EQ(totals.warmHits + totals.coldSearches,
              totals.branchesConsidered);

    double preDrift = epochRate(online, 3);
    // Post-redeploy recovery within the cold loop's bounds: +0.02
    // by the end of the drifted segment, +0.01 once the original
    // phase returns.
    EXPECT_LE(epochRate(online, 7), preDrift + 0.02);
    EXPECT_LE(epochRate(online, 11), preDrift + 0.01);
}

TEST(Recovery, AdversarialDecorrelationRejectsInsteadOfDeploying)
{
    ExperimentConfig cfg;
    cfg.profile.maxHardBranches = 256;

    const AppConfig &app = appByName("kafka");
    DriftSpec drift;
    drift.kind = DriftKind::Adversarial;
    drift.periodRecords = 270'000;
    drift.decorrelate = 1.0;
    const uint64_t total = 360'000, window = 30'000;
    // Epochs 0-8: correlated profiling prefix; epochs 9-11:
    // decorrelated tail. The epoch-10 retraining window straddles
    // the boundary: its candidate carries hints learned from the
    // stale correlated half but is validated on decorrelated
    // traffic — exactly the bundle the gate must turn away.

    std::vector<BranchRecord> stream =
        genDrift(app, 0, total, drift);

    HintStore store;
    ProposalLog proposals;
    AdaptiveRunStats online = runOnlineWhisperd(
        stream, window, /*trainEvery=*/2, /*historyWindows=*/2,
        /*margin=*/0.002, cfg, store, &proposals);

    ASSERT_EQ(online.perEpoch.size(), 12u);
    // Deployment happened while the stream was correlated...
    bool acceptedInPrefix = false;
    for (const auto &p : proposals)
        if (p.accepted && p.epoch <= 9)
            acceptedInPrefix = true;
    EXPECT_TRUE(acceptedInPrefix);
    // ...and no accepted deployment ever regressed its validation
    // window: the post-drift accepts are hint-retracting bundles
    // that beat the stale incumbent on decorrelated traffic, which
    // is adaptation, not a bad deploy.
    for (const auto &p : proposals) {
        if (p.accepted) {
            EXPECT_GT(p.candAcc, p.incAcc)
                << "epoch " << p.epoch;
        }
    }

    // Rollback-on-regression, provoked directly: retrain a bundle
    // purely on the correlated prefix (the regressing deploy an
    // unguarded service would push) and offer it against a
    // decorrelated validation window. The gate must turn it away.
    std::vector<BranchRecord> prefixRecent(
        stream.begin() + (drift.periodRecords - 2 * window),
        stream.begin() + drift.periodRecords);
    ChunkProfiler::Options opt;
    opt.maxHardBranches = cfg.profile.maxHardBranches;
    opt.statsWarmupRecords = window / 2;
    ChunkProfiler profiler(cfg.whisper, makeTage(cfg.tageBudgetKB),
                           opt);
    BranchProfile staleProfile = profiler.profileChunk(prefixRecent);
    ASSERT_GT(staleProfile.numBranches(), 0u);
    WhisperTrainer trainer(cfg.whisper, globalTruthTables());
    TrainingPool pool(2);
    HintInjector injector(cfg.injector);
    HintBundle stale;
    stale.hints = pool.train(trainer, staleProfile);
    ChunkSource placeSrc(prefixRecent);
    stale.placements = injector.place(placeSrc, stale.hints);

    std::vector<BranchRecord> tailWindow(stream.end() - window,
                                         stream.end());
    auto evalOnTail = [&](const HintBundle *bundle) {
        ChunkSource src(tailWindow);
        std::unique_ptr<BranchPredictor> pred;
        if (bundle) {
            pred = std::make_unique<WhisperPredictor>(
                makeTage(cfg.tageBudgetKB), cfg.whisper,
                globalTruthTables(), bundle->hints,
                bundle->placements);
        } else {
            pred = makeTage(cfg.tageBudgetKB);
        }
        return runPredictor(src, *pred).accuracy();
    };
    HintStore::Snapshot incumbent = store.current();
    ASSERT_TRUE(incumbent);
    double incAcc = evalOnTail(&incumbent->bundle);
    double staleAcc = evalOnTail(&stale);
    uint64_t rejectedBefore = store.rejected();
    uint64_t epochBefore = store.epoch();
    EXPECT_FALSE(store.propose(std::move(stale), staleAcc, incAcc,
                               /*margin=*/0.002));
    EXPECT_EQ(store.rejected(), rejectedBefore + 1);
    EXPECT_EQ(store.epoch(), epochBefore); // fleet bundle untouched

    // Not-worse contract: on the decorrelated tail the online
    // predictor (TAGE + whatever hints survived validation) may not
    // do materially worse than plain TAGE.
    auto tage = makeTage(cfg.tageBudgetKB);
    ChunkSource tageSrc(stream);
    AdaptiveRunStats tageRun =
        runPredictorAdaptive(tageSrc, *tage, window, nullptr);
    EXPECT_LE(epochRate(online, 11),
              epochRate(tageRun, 11) + 0.01);
}
