/**
 * @file
 * Round-trip tests for the profile / hint-bundle serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/whisper_io.hh"
#include "sim/experiment.hh"
#include "util/rng.hh"

using namespace whisper;

namespace
{

BranchProfile
smallProfile()
{
    ExperimentConfig cfg;
    cfg.trainRecords = 120'000;
    cfg.profile.maxHardBranches = 64;
    return profileApp(appByName("kafka"), 0, cfg);
}

} // namespace

TEST(ProfileIo, RoundTrip)
{
    BranchProfile original = smallProfile();
    std::string path = "/tmp/whisper_test_profile.bin";
    ASSERT_TRUE(saveProfile(original, path));

    BranchProfile loaded;
    ASSERT_TRUE(loadProfile(loaded, path).ok());
    std::remove(path.c_str());

    EXPECT_EQ(loaded.numBranches(), original.numBranches());
    EXPECT_EQ(loaded.numHardBranches(),
              original.numHardBranches());
    EXPECT_EQ(loaded.totalInstructions,
              original.totalInstructions);
    EXPECT_EQ(loaded.totalMispredicts, original.totalMispredicts);
    EXPECT_EQ(loaded.lengths(), original.lengths());

    for (const auto &[pc, e] : original.entries()) {
        const BranchProfileEntry *l = loaded.find(pc);
        ASSERT_NE(l, nullptr);
        EXPECT_EQ(l->executions, e.executions);
        EXPECT_EQ(l->takenCount, e.takenCount);
        EXPECT_EQ(l->baselineMispredicts, e.baselineMispredicts);
        EXPECT_EQ(l->hard, e.hard);
        if (e.hard) {
            for (size_t i = 0; i < e.byLength.size(); ++i) {
                EXPECT_EQ(l->byLength[i].taken, e.byLength[i].taken);
                EXPECT_EQ(l->byLength[i].notTaken,
                          e.byLength[i].notTaken);
            }
            EXPECT_EQ(l->raw8.taken, e.raw8.taken);
        }
    }
}

TEST(ProfileIo, LoadedProfileTrainsIdentically)
{
    // The serialized profile must drive the trainer to the exact
    // same hints as the in-memory one.
    BranchProfile original = smallProfile();
    std::string path = "/tmp/whisper_test_profile2.bin";
    ASSERT_TRUE(saveProfile(original, path));
    BranchProfile loaded;
    ASSERT_TRUE(loadProfile(loaded, path).ok());
    std::remove(path.c_str());

    WhisperConfig cfg;
    WhisperTrainer trainer(cfg, globalTruthTables());
    auto a = trainer.train(original);
    auto b = trainer.train(loaded);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].hint, b[i].hint);
        EXPECT_EQ(a[i].expectedMispredicts,
                  b[i].expectedMispredicts);
    }
}

TEST(ProfileIo, RejectsGarbage)
{
    std::string path = "/tmp/whisper_test_garbage_profile.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("garbage garbage garbage", f);
    std::fclose(f);
    BranchProfile p;
    EXPECT_TRUE(loadProfile(p, path).corrupt());
    std::remove(path.c_str());
}

TEST(ProfileIo, MissingFileFails)
{
    BranchProfile p;
    EXPECT_TRUE(
        loadProfile(p, "/tmp/does_not_exist_whisper.bin").missing());
    EXPECT_FALSE(saveProfile(p, "/nonexistent-dir/x.bin"));
}

TEST(HintBundleIo, RoundTrip)
{
    Rng rng(31);
    HintBundle original;
    for (int i = 0; i < 200; ++i) {
        TrainedHint h;
        h.pc = 0x400000 + rng.nextBelow(1 << 20) * 16;
        h.hint.historyIdx = static_cast<uint8_t>(rng.nextBelow(16));
        h.hint.formula =
            static_cast<uint16_t>(rng.nextBelow(1 << 15));
        h.hint.bias = static_cast<HintBias>(rng.nextBelow(3));
        h.hint.pcPointer = BrHint::pcPointerFor(h.pc);
        h.historyLength = static_cast<unsigned>(rng.nextBelow(1025));
        h.expectedMispredicts = rng.nextBelow(1000);
        h.profiledMispredicts =
            h.expectedMispredicts + rng.nextBelow(1000);
        h.executions = h.profiledMispredicts + rng.nextBelow(10000);
        original.hints.push_back(h);

        HintPlacement p;
        p.branchPc = h.pc;
        p.predecessorPc = h.pc - 16;
        p.coverage = rng.nextDouble();
        p.precision = rng.nextDouble();
        p.predecessorExecutions = rng.nextBelow(100000);
        original.placements.push_back(p);
    }

    std::string path = "/tmp/whisper_test_hints.bin";
    ASSERT_TRUE(saveHintBundle(original, path));
    HintBundle loaded;
    ASSERT_TRUE(loadHintBundle(loaded, path).ok());
    std::remove(path.c_str());

    ASSERT_EQ(loaded.hints.size(), original.hints.size());
    ASSERT_EQ(loaded.placements.size(), original.placements.size());
    for (size_t i = 0; i < original.hints.size(); ++i) {
        EXPECT_EQ(loaded.hints[i].pc, original.hints[i].pc);
        EXPECT_EQ(loaded.hints[i].hint, original.hints[i].hint);
        EXPECT_EQ(loaded.hints[i].historyLength,
                  original.hints[i].historyLength);
        EXPECT_EQ(loaded.placements[i].predecessorPc,
                  original.placements[i].predecessorPc);
        EXPECT_DOUBLE_EQ(loaded.placements[i].coverage,
                         original.placements[i].coverage);
    }
}

TEST(HintBundleIo, BundleDrivesPredictor)
{
    // A bundle loaded from disk must build a working predictor.
    ExperimentConfig cfg;
    cfg.trainRecords = 200'000;
    cfg.testRecords = 150'000;
    const AppConfig &app = appByName("kafka");
    BranchProfile profile = profileApp(app, 0, cfg);
    WhisperBuild build = trainWhisper(app, 0, profile, cfg);

    HintBundle bundle{build.hints, build.placements};
    std::string path = "/tmp/whisper_test_bundle.bin";
    ASSERT_TRUE(saveHintBundle(bundle, path));
    HintBundle loaded;
    ASSERT_TRUE(loadHintBundle(loaded, path).ok());
    std::remove(path.c_str());

    WhisperBuild rebuilt;
    rebuilt.hints = loaded.hints;
    rebuilt.placements = loaded.placements;
    auto a = makeWhisperPredictor(cfg, build);
    auto b = makeWhisperPredictor(cfg, rebuilt);
    auto sa = evalApp(app, 1, cfg, *a);
    auto sb = evalApp(app, 1, cfg, *b);
    EXPECT_EQ(sa.mispredicts, sb.mispredicts);
}

TEST(HintBundleIo, RejectsGarbage)
{
    std::string path = "/tmp/whisper_test_garbage_hints.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("x", f);
    std::fclose(f);
    HintBundle b;
    EXPECT_TRUE(loadHintBundle(b, path).corrupt());
    std::remove(path.c_str());
}

TEST(VersionedBundleIo, RoundTripPreservesEpochHeader)
{
    Rng rng(77);
    VersionedHintBundle original;
    original.epoch = 42;
    original.validationAccuracy = 0.987654;
    for (int i = 0; i < 50; ++i) {
        TrainedHint h;
        h.pc = 0x400000 + rng.nextBelow(1 << 18) * 16;
        h.hint.historyIdx = static_cast<uint8_t>(rng.nextBelow(16));
        h.hint.formula =
            static_cast<uint16_t>(rng.nextBelow(1 << 15));
        h.hint.bias = static_cast<HintBias>(rng.nextBelow(3));
        h.hint.pcPointer = BrHint::pcPointerFor(h.pc);
        h.historyLength = static_cast<unsigned>(rng.nextBelow(1025));
        original.bundle.hints.push_back(h);

        HintPlacement p;
        p.branchPc = h.pc;
        p.predecessorPc = h.pc - 16;
        p.coverage = rng.nextDouble();
        original.bundle.placements.push_back(p);
    }

    std::string path = "/tmp/whisper_test_versioned.bin";
    ASSERT_TRUE(saveVersionedBundle(original, path));
    VersionedHintBundle loaded;
    ASSERT_TRUE(loadVersionedBundle(loaded, path).ok());
    std::remove(path.c_str());

    EXPECT_EQ(loaded.epoch, original.epoch);
    EXPECT_DOUBLE_EQ(loaded.validationAccuracy,
                     original.validationAccuracy);
    EXPECT_TRUE(loaded == original);
}

TEST(VersionedBundleIo, RejectsBadMagic)
{
    // A plain (un-versioned) hint bundle has a different magic; the
    // versioned loader must refuse it rather than misparse.
    HintBundle plain;
    plain.hints.resize(1);
    std::string path = "/tmp/whisper_test_versioned_badmagic.bin";
    ASSERT_TRUE(saveHintBundle(plain, path));
    VersionedHintBundle v;
    EXPECT_TRUE(loadVersionedBundle(v, path).corrupt());

    // And vice versa: a versioned file is not a plain bundle.
    VersionedHintBundle versioned;
    versioned.epoch = 1;
    ASSERT_TRUE(saveVersionedBundle(versioned, path));
    HintBundle b;
    EXPECT_TRUE(loadHintBundle(b, path).corrupt());
    std::remove(path.c_str());
}

TEST(VersionedBundleIo, RejectsTruncatedHeader)
{
    std::string path = "/tmp/whisper_test_versioned_trunc.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    uint32_t magic = 0x57484550; // kEpochMagic, but nothing after it
    std::fwrite(&magic, sizeof magic, 1, f);
    std::fclose(f);
    VersionedHintBundle v;
    EXPECT_TRUE(loadVersionedBundle(v, path).corrupt());
    std::remove(path.c_str());
}
