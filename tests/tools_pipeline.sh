#!/bin/sh
# End-to-end test of the CLI tools: generate traces, inspect them,
# train a hint bundle, and evaluate it — the paper's Fig. 10 flow
# split across processes. Any non-zero exit fails the test.
set -e

BIN_DIR="$1"
WORK_DIR="${TMPDIR:-/tmp}/whisper_tools_test_$$"
mkdir -p "$WORK_DIR"
trap 'rm -rf "$WORK_DIR"' EXIT

"$BIN_DIR/whisper_trace_stats" --list | grep -q mysql

"$BIN_DIR/whisper_trace_gen" --app kafka --input 0 \
    --records 150000 --out "$WORK_DIR/train.whrt"
"$BIN_DIR/whisper_trace_gen" --app kafka --input 1 \
    --records 120000 --out "$WORK_DIR/test.whrt"

"$BIN_DIR/whisper_trace_stats" "$WORK_DIR/train.whrt" --top 3 \
    | grep -q "app=kafka"

"$BIN_DIR/whisper_train" --trace "$WORK_DIR/train.whrt" \
    --out "$WORK_DIR/kafka.hints" \
    --profile-out "$WORK_DIR/kafka.profile" | grep -q "hints"

"$BIN_DIR/whisper_eval" --trace "$WORK_DIR/test.whrt" \
    --hints "$WORK_DIR/kafka.hints" \
    --profile "$WORK_DIR/kafka.profile" \
    --predictors tage,whisper,profile-static \
    > "$WORK_DIR/eval.txt"
grep -q "whisper+tage" "$WORK_DIR/eval.txt"
grep -q "profile-static" "$WORK_DIR/eval.txt"

# Determinism: regenerating the same trace must be byte-identical.
"$BIN_DIR/whisper_trace_gen" --app kafka --input 0 \
    --records 150000 --out "$WORK_DIR/train2.whrt"
cmp "$WORK_DIR/train.whrt" "$WORK_DIR/train2.whrt"

echo "tools pipeline OK"
