/**
 * @file
 * Unit + property tests for the extended-ROMBF formula machinery
 * (core/formula, core/formula_trainer, core/history_hash).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/correlation_screen.hh"
#include "core/formula.hh"
#include "core/formula_gates.hh"
#include "core/formula_trainer.hh"
#include "core/history_hash.hh"
#include "util/rng.hh"

using namespace whisper;

TEST(BoolOp, SingleUnitTruthTables)
{
    // Fig. 8: the four single-unit operations.
    EXPECT_TRUE(applyBoolOp(BoolOp::And, true, true));
    EXPECT_FALSE(applyBoolOp(BoolOp::And, true, false));
    EXPECT_TRUE(applyBoolOp(BoolOp::Or, false, true));
    EXPECT_FALSE(applyBoolOp(BoolOp::Or, false, false));
    // a -> b
    EXPECT_TRUE(applyBoolOp(BoolOp::Impl, false, false));
    EXPECT_TRUE(applyBoolOp(BoolOp::Impl, false, true));
    EXPECT_FALSE(applyBoolOp(BoolOp::Impl, true, false));
    EXPECT_TRUE(applyBoolOp(BoolOp::Impl, true, true));
    // converse non-implication: !a & b
    EXPECT_FALSE(applyBoolOp(BoolOp::Cnimpl, false, false));
    EXPECT_TRUE(applyBoolOp(BoolOp::Cnimpl, false, true));
    EXPECT_FALSE(applyBoolOp(BoolOp::Cnimpl, true, false));
    EXPECT_FALSE(applyBoolOp(BoolOp::Cnimpl, true, true));
}

TEST(BoolFormula, EncodingWidths)
{
    // 7 nodes * 2 bits + 1 inversion bit = the brhint's 15-bit field.
    EXPECT_EQ(BoolFormula::encodingBits(8), 15u);
    EXPECT_EQ(BoolFormula::encodingCount(8), 32768u);
    EXPECT_EQ(BoolFormula::encodingBits(4), 7u);
    EXPECT_EQ(BoolFormula::encodingBits(2), 3u);
}

TEST(BoolFormula, AllAndTree)
{
    // All nodes AND, no inversion: true only when all 8 bits set.
    BoolFormula f(0, 8);
    EXPECT_TRUE(f.evaluate(0xFF));
    EXPECT_FALSE(f.evaluate(0xFE));
    EXPECT_FALSE(f.evaluate(0x00));
    EXPECT_TRUE(f.isMonotone());
}

TEST(BoolFormula, AllOrTree)
{
    // All nodes OR: op bits 01 per node -> 0b01010101010101.
    uint16_t enc = 0;
    for (unsigned n = 0; n < 7; ++n)
        enc |= 1u << (2 * n);
    BoolFormula f(enc, 8);
    EXPECT_FALSE(f.evaluate(0x00));
    for (unsigned b = 0; b < 8; ++b)
        EXPECT_TRUE(f.evaluate(1u << b)) << b;
    EXPECT_TRUE(f.isMonotone());
}

TEST(BoolFormula, InversionBit)
{
    uint16_t inv = 1u << 14;
    BoolFormula f(inv, 8); // NOT(all-and)
    EXPECT_FALSE(f.evaluate(0xFF));
    EXPECT_TRUE(f.evaluate(0x00));
    EXPECT_TRUE(f.inverted());
    EXPECT_FALSE(f.isMonotone());
}

TEST(BoolFormula, NodeOpDecoding)
{
    // Node 3 = Impl (encoding 2 at bits 6-7).
    uint16_t enc = 2u << 6;
    BoolFormula f(enc, 8);
    EXPECT_EQ(f.nodeOp(3), BoolOp::Impl);
    EXPECT_EQ(f.nodeOp(0), BoolOp::And);
    EXPECT_FALSE(f.isMonotone());
}

TEST(BoolFormula, TruthTableMatchesEvaluate)
{
    Rng rng(42);
    for (int trial = 0; trial < 50; ++trial) {
        uint16_t enc = static_cast<uint16_t>(rng.nextBelow(32768));
        BoolFormula f(enc, 8);
        TruthTable tt = f.truthTable();
        for (unsigned v = 0; v < 256; ++v) {
            bool viaTable = (tt[v / 64] >> (v % 64)) & 1;
            ASSERT_EQ(viaTable, f.evaluate(static_cast<uint8_t>(v)))
                << "enc=" << enc << " v=" << v;
        }
    }
}

TEST(BoolFormula, TreeFormulasAreNeverConstant)
{
    // Read-once trees over distinct leaves cannot compute a constant
    // function; Whisper handles always/never via the Bias field.
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        uint16_t enc = static_cast<uint16_t>(rng.nextBelow(32768));
        BoolFormula f(enc, 8);
        bool value = false;
        EXPECT_FALSE(f.isConstant(value)) << enc;
    }
}

TEST(BoolFormula, ClassifyRootFamilies)
{
    // classify() keys on the root node (node 6 for 8 inputs).
    auto mk = [](BoolOp root, bool invert) {
        uint16_t enc = static_cast<uint16_t>(root) << 12;
        if (invert)
            enc |= 1u << 14;
        return BoolFormula(enc, 8);
    };
    EXPECT_EQ(mk(BoolOp::And, false).classify(), OpClass::And);
    EXPECT_EQ(mk(BoolOp::Or, false).classify(), OpClass::Or);
    EXPECT_EQ(mk(BoolOp::Impl, false).classify(), OpClass::Impl);
    EXPECT_EQ(mk(BoolOp::Cnimpl, false).classify(), OpClass::Cnimpl);
    EXPECT_EQ(mk(BoolOp::And, true).classify(), OpClass::Others);
}

TEST(BoolFormula, FourInputVariant)
{
    // 4-input tree: nodes (b0,b1),(b2,b3),root.
    BoolFormula allAnd(0, 4);
    EXPECT_TRUE(allAnd.evaluate(0x0F));
    EXPECT_FALSE(allAnd.evaluate(0x07));
}

TEST(BoolFormula, ToStringRendersOps)
{
    BoolFormula f(0, 8);
    std::string s = f.toString();
    EXPECT_NE(s.find("b0"), std::string::npos);
    EXPECT_NE(s.find("&"), std::string::npos);
}

TEST(GateDelay, PaperNumbers)
{
    // Paper SIII-C: 3 single-unit levels * 5 + final mux 4 = 19.
    EXPECT_EQ(formulaGateDelay(8), 19u);
    EXPECT_EQ(formulaGateDelay(2), 9u);
    EXPECT_EQ(formulaGateDelay(4), 14u);
}

TEST(GeometricLengths, PaperSeries)
{
    // a=8, N=1024, m=16 -> 8, 11, 15, ..., 1024 (paper SIII-A).
    auto lengths = geometricLengths(8, 1024, 16);
    ASSERT_EQ(lengths.size(), 16u);
    EXPECT_EQ(lengths.front(), 8u);
    EXPECT_EQ(lengths[1], 11u);
    EXPECT_EQ(lengths[2], 15u);
    EXPECT_EQ(lengths.back(), 1024u);
    for (size_t i = 1; i < lengths.size(); ++i)
        EXPECT_GT(lengths[i], lengths[i - 1]);
}

TEST(GeometricLengths, RatioApproximatelyGeometric)
{
    auto lengths = geometricLengths(8, 1024, 16);
    double r = std::pow(1024.0 / 8.0, 1.0 / 15.0);
    for (size_t i = 1; i + 1 < lengths.size(); ++i) {
        double ratio = static_cast<double>(lengths[i + 1]) / lengths[i];
        EXPECT_NEAR(ratio, r, 0.25) << i;
    }
}

// Regression: when m is large relative to N-a, the rounded geometric
// series used to go non-monotone past N in the tail (e.g. a=1, N=4,
// m=8 produced ... 4, 5, 6, 4). The series must stay strictly
// increasing, stay within [a, N], and end exactly at N, even if that
// means fewer than m entries.
TEST(GeometricLengths, DegenerateTailStaysMonotone)
{
    auto lengths = geometricLengths(1, 4, 8);
    ASSERT_FALSE(lengths.empty());
    EXPECT_EQ(lengths.front(), 1u);
    EXPECT_EQ(lengths.back(), 4u);
    EXPECT_LE(lengths.size(), 8u);
    for (size_t i = 1; i < lengths.size(); ++i)
        EXPECT_GT(lengths[i], lengths[i - 1]) << i;
    EXPECT_EQ(lengths, (std::vector<unsigned>{1, 2, 3, 4}));
}

TEST(GeometricLengths, ClampedSeriesSweep)
{
    // Every (a, N, m) combination must produce a strictly increasing
    // series from a to N with at most m entries.
    for (unsigned a : {1u, 2u, 8u}) {
        for (unsigned n : {4u, 16u, 100u}) {
            if (n <= a)
                continue;
            for (unsigned m : {2u, 5u, 12u}) {
                auto lengths = geometricLengths(a, n, m);
                ASSERT_GE(lengths.size(), 2u)
                    << a << "," << n << "," << m;
                EXPECT_EQ(lengths.front(), a);
                EXPECT_EQ(lengths.back(), n);
                EXPECT_LE(lengths.size(), static_cast<size_t>(m));
                for (size_t i = 1; i < lengths.size(); ++i)
                    EXPECT_GT(lengths[i], lengths[i - 1])
                        << a << "," << n << "," << m << " @" << i;
            }
        }
    }
}

TEST(TruthTableCache, MatchesDirectEvaluation)
{
    TruthTableCache cache(8);
    Rng rng(11);
    for (int trial = 0; trial < 64; ++trial) {
        uint16_t enc = static_cast<uint16_t>(rng.nextBelow(32768));
        uint8_t in = static_cast<uint8_t>(rng.nextBelow(256));
        EXPECT_EQ(cache.evaluate(enc, in),
                  BoolFormula(enc, 8).evaluate(in));
    }
}

TEST(FormulaCandidates, GlobalPermutationIsStable)
{
    FormulaCandidates a(8, 0.001, 1234);
    FormulaCandidates b(8, 0.001, 1234);
    EXPECT_EQ(a.encodings(), b.encodings());
    EXPECT_EQ(a.encodings().size(), 32u); // 0.1% of 32768
}

TEST(FormulaCandidates, FractionPrefixNesting)
{
    // A smaller fraction must be a prefix of a larger one (the
    // Fisher-Yates order is generated once and shared).
    FormulaCandidates c(8, 1.0, 99);
    auto small = c.withFraction(0.01);
    auto large = c.withFraction(0.1);
    ASSERT_LT(small.size(), large.size());
    for (size_t i = 0; i < small.size(); ++i)
        EXPECT_EQ(small[i], large[i]);
    EXPECT_EQ(c.withFraction(1.0).size(), 32768u);
}

TEST(ScoreFormula, CountsMispredictions)
{
    // Table: key 0xFF taken 10 times; key 0x00 not-taken 5 times.
    HashedSampleTable t(8);
    t.taken[0xFF] = 10;
    t.notTaken[0x00] = 5;

    // all-AND: predicts taken only on 0xFF -> 0 misses.
    TruthTable andTt = BoolFormula(0, 8).truthTable();
    EXPECT_EQ(scoreFormula(andTt, t), 0u);

    // NOT(all-AND): wrong everywhere -> 15 misses.
    TruthTable notTt = BoolFormula(1u << 14, 8).truthTable();
    EXPECT_EQ(scoreFormula(notTt, t), 15u);
}

TEST(ScoreFormula, EarlyOutBounds)
{
    HashedSampleTable t(8);
    for (unsigned k = 0; k < 256; ++k)
        t.notTaken[k] = 100;
    // all-OR mispredicts every not-taken sample with any bit set.
    uint16_t enc = 0;
    for (unsigned n = 0; n < 7; ++n)
        enc |= 1u << (2 * n);
    TruthTable tt = BoolFormula(enc, 8).truthTable();
    uint64_t bounded = scoreFormula(tt, t, 500);
    EXPECT_GT(bounded, 500u);
    EXPECT_LT(bounded, 25500u); // stopped early
}

TEST(FindBooleanFormula, RecoversPlantedFormula)
{
    // Property: for a planted formula with noise-free samples,
    // Algorithm 1 over the full space returns a formula with zero
    // mispredictions.
    TruthTableCache cache(8);
    FormulaCandidates all(8, 1.0, 5);
    Rng rng(21);
    for (int trial = 0; trial < 5; ++trial) {
        uint16_t planted = static_cast<uint16_t>(rng.nextBelow(32768));
        BoolFormula f(planted, 8);
        HashedSampleTable t(8);
        for (unsigned k = 0; k < 256; ++k) {
            unsigned weight = 1 + (rng.nextBelow(20));
            if (f.evaluate(static_cast<uint8_t>(k)))
                t.taken[k] = weight;
            else
                t.notTaken[k] = weight;
        }
        auto res = findBooleanFormula(t, all.encodings(), cache);
        ASSERT_TRUE(res.valid);
        EXPECT_EQ(res.mispredicts, 0u) << "trial " << trial;
    }
}

TEST(FindBooleanFormula, RandomizedSubsetIsNearOptimal)
{
    // Property (paper SIII-B): scoring ~0.1% of formulas finds a
    // formula whose misprediction count is within a modest factor
    // of the exhaustive optimum on noisy data.
    TruthTableCache cache(8);
    FormulaCandidates c(8, 1.0, 7);
    Rng rng(31);

    BoolFormula planted(0x2A51, 8);
    HashedSampleTable t(8);
    for (unsigned k = 0; k < 256; ++k) {
        unsigned weight = 5 + rng.nextBelow(30);
        bool taken = planted.evaluate(static_cast<uint8_t>(k));
        if (rng.nextBool(0.08))
            taken = !taken; // noise
        if (taken)
            t.taken[k] = weight;
        else
            t.notTaken[k] = weight;
    }
    auto exhaustive = findBooleanFormula(t, c.withFraction(1.0), cache);
    auto randomized =
        findBooleanFormula(t, c.withFraction(0.01), cache);
    auto tiny = findBooleanFormula(t, c.withFraction(0.001), cache);
    ASSERT_TRUE(exhaustive.valid && randomized.valid && tiny.valid);
    EXPECT_LE(exhaustive.mispredicts, randomized.mispredicts);
    EXPECT_LE(randomized.mispredicts, tiny.mispredicts);
    // Near-optimality: a 1% sample stays within a small factor of
    // the exhaustive optimum (the full trainer additionally gets 16
    // history lengths and the bias fallback per branch).
    EXPECT_LE(randomized.mispredicts, 2 * exhaustive.mispredicts);
    EXPECT_GT(exhaustive.mispredicts, 0u); // noise floor exists
}

// ---------------------------------------------------------------
// Length dedup: the top-K budget counts *distinct* lengths, so a
// candidate series with duplicated values cannot eat the budget
// with copies of the same length.
// ---------------------------------------------------------------

TEST(DistinctLengths, FirstIndexPerValue)
{
    auto idx = CorrelationScreen::distinctLengthIndices(
        {4, 8, 8, 16});
    EXPECT_EQ(idx, (std::vector<unsigned>{0, 1, 3}));
    EXPECT_EQ(CorrelationScreen::distinctLengthIndices({7, 7, 7}),
              (std::vector<unsigned>{0}));
    EXPECT_TRUE(CorrelationScreen::distinctLengthIndices({}).empty());
}

TEST(DistinctLengths, BudgetCountsDistinctValues)
{
    // A series with duplicates: two branches of the search space
    // share length 8. The kept set must never contain two indices
    // referencing the same length value, and the maxLengths budget
    // must buy that many *distinct* lengths.
    std::vector<unsigned> lengths = {4, 8, 8, 16};
    BranchProfileEntry entry;
    entry.executions = 400;
    entry.takenCount = 200;
    entry.byLength.resize(lengths.size(), HashedSampleTable(8));
    Rng rng(91);
    for (auto &t : entry.byLength)
        for (unsigned k = 0; k < 64; ++k)
            t.record(static_cast<uint8_t>(rng.nextBelow(256)),
                     rng.nextBool(0.5));

    ScreenConfig cfg;
    cfg.maxLengths = 3;
    BranchScreen scr =
        CorrelationScreen(cfg).screenBranch(entry, lengths);
    ASSERT_FALSE(scr.lengthIdx.empty());
    EXPECT_LE(scr.lengthIdx.size(), 3u);
    std::set<unsigned> values;
    for (unsigned idx : scr.lengthIdx) {
        ASSERT_LT(idx, lengths.size());
        EXPECT_TRUE(values.insert(lengths[idx]).second)
            << "duplicate length " << lengths[idx];
    }
    // All three distinct values fit the budget of 3.
    EXPECT_EQ(values.size(), 3u);

    // Screening disabled: same dedup applies to the passthrough.
    ScreenConfig off;
    off.enabled = false;
    BranchScreen raw =
        CorrelationScreen(off).screenBranch(entry, lengths);
    EXPECT_EQ(raw.lengthIdx, (std::vector<unsigned>{0, 1, 3}));
}

TEST(HashedSampleTable, OracleAndMerge)
{
    HashedSampleTable a(4), b(4);
    a.record(3, true);
    a.record(3, false);
    a.record(3, true);
    b.record(3, false);
    EXPECT_EQ(a.oracleMispredicts(), 1u);
    a.addFrom(b);
    EXPECT_EQ(a.taken[3], 2u);
    EXPECT_EQ(a.notTaken[3], 2u);
    EXPECT_EQ(a.totalSamples(), 4u);
    EXPECT_EQ(a.oracleMispredicts(), 2u);
}

// ---------------------------------------------------------------
// Gate-level netlist (Figs. 8/9) vs the behavioural model.
// ---------------------------------------------------------------

TEST(FormulaNetlist, MatchesBehaviouralModelSampled)
{
    Rng rng(55);
    for (int trial = 0; trial < 40; ++trial) {
        uint16_t enc = static_cast<uint16_t>(rng.nextBelow(32768));
        BoolFormula f(enc, 8);
        FormulaNetlist net(f);
        for (unsigned v = 0; v < 256; ++v) {
            ASSERT_EQ(net.evaluate(static_cast<uint8_t>(v)),
                      f.evaluate(static_cast<uint8_t>(v)))
                << "enc=" << enc << " v=" << v;
        }
    }
}

TEST(FormulaNetlist, FourInputVariant)
{
    BoolFormula f(0x35, 4);
    FormulaNetlist net(f);
    for (unsigned v = 0; v < 16; ++v)
        EXPECT_EQ(net.evaluate(static_cast<uint8_t>(v)),
                  f.evaluate(static_cast<uint8_t>(v)));
}

TEST(FormulaNetlist, CriticalPathWithinPaperBound)
{
    // The paper counts 19 gate delays for 8 inputs using 3-gate
    // muxes; our primitive decomposition (NOT/AND/OR only, 4 gates
    // per 2:1 mux stage) costs at most 2x that bound.
    Rng rng(66);
    unsigned worst = 0;
    for (int trial = 0; trial < 64; ++trial) {
        uint16_t enc = static_cast<uint16_t>(rng.nextBelow(32768));
        FormulaNetlist net(BoolFormula(enc, 8));
        worst = std::max(worst, net.criticalPathDelay());
    }
    EXPECT_LE(worst, 2 * formulaGateDelay(8));
    EXPECT_GE(worst, formulaGateDelay(8) / 2);
}

TEST(FormulaNetlist, DepthGrowsLogarithmically)
{
    FormulaNetlist n2(BoolFormula(0, 2));
    FormulaNetlist n4(BoolFormula(0, 4));
    FormulaNetlist n8(BoolFormula(0, 8));
    EXPECT_LT(n2.criticalPathDelay(), n4.criticalPathDelay());
    EXPECT_LT(n4.criticalPathDelay(), n8.criticalPathDelay());
    // One extra tree level adds one single unit's delay, not a
    // doubling: depth is logarithmic in the input count.
    EXPECT_LT(n8.criticalPathDelay(),
              2u * n4.criticalPathDelay());
}

TEST(FormulaNetlist, GateCountIsLinearInInputs)
{
    FormulaNetlist n4(BoolFormula(0, 4));
    FormulaNetlist n8(BoolFormula(0, 8));
    // n inputs -> n-1 single units: gate count scales ~linearly.
    EXPECT_GT(n8.gateCount(), n4.gateCount());
    EXPECT_LT(n8.gateCount(), 3 * n4.gateCount());
}
