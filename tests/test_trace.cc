/**
 * @file
 * Unit tests for src/trace: records, global/folded history, trace
 * container and serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/branch_trace.hh"
#include "trace/global_history.hh"

using namespace whisper;

TEST(GlobalHistory, PushAndBit)
{
    GlobalHistory h(16);
    h.push(true);
    h.push(false);
    h.push(true);
    EXPECT_TRUE(h.bit(0));
    EXPECT_FALSE(h.bit(1));
    EXPECT_TRUE(h.bit(2));
    EXPECT_EQ(h.count(), 3u);
}

TEST(GlobalHistory, LastBits)
{
    GlobalHistory h(64);
    // Push 1,1,0,1 -> bit0 is the newest (1), then 0, 1, 1.
    h.push(true);
    h.push(true);
    h.push(false);
    h.push(true);
    EXPECT_EQ(h.lastBits(4), 0b1101u);
    EXPECT_EQ(h.lastBits(2), 0b01u);
}

TEST(GlobalHistory, WrapsAround)
{
    GlobalHistory h(8);
    for (int i = 0; i < 20; ++i)
        h.push(i % 3 == 0);
    // Most recent push was i=19 (19%3!=0 -> false).
    EXPECT_FALSE(h.bit(0));
    // i=18 -> true.
    EXPECT_TRUE(h.bit(1));
}

TEST(FoldedHistory, MatchesReferenceFold)
{
    // The incremental folded register must equal the reference fold
    // computed from the raw ring at every step.
    GlobalHistory h(256);
    size_t v8 = h.addFoldedView(37, 8);
    size_t v5 = h.addFoldedView(12, 5);
    size_t v13 = h.addFoldedView(64, 13);

    uint64_t seed = 12345;
    for (int i = 0; i < 500; ++i) {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        h.push((seed >> 40) & 1);
        ASSERT_EQ(h.foldedValue(v8), h.foldedHash(37, 8)) << i;
        ASSERT_EQ(h.foldedValue(v5), h.foldedHash(12, 5)) << i;
        ASSERT_EQ(h.foldedValue(v13), h.foldedHash(64, 13)) << i;
    }
}

TEST(FoldedHistory, IdentityWhenLengthEqualsWidth)
{
    // Folding the last 8 bits into 8 bits is the raw history.
    GlobalHistory h(64);
    size_t v = h.addFoldedView(8, 8);
    uint64_t seed = 7;
    for (int i = 0; i < 100; ++i) {
        seed = seed * 6364136223846793005ULL + 99;
        h.push((seed >> 33) & 1);
        ASSERT_EQ(h.foldedValue(v), h.lastBits(8));
    }
}

TEST(FoldedHistory, ResetClears)
{
    GlobalHistory h(32);
    size_t v = h.addFoldedView(16, 8);
    // 15 taken bits fold to a non-zero register (an even count per
    // fold position would cancel out).
    for (int i = 0; i < 15; ++i)
        h.push(true);
    EXPECT_NE(h.foldedValue(v), 0u);
    h.reset();
    EXPECT_EQ(h.foldedValue(v), 0u);
    EXPECT_EQ(h.count(), 0u);
}

TEST(BranchTrace, AppendAccumulates)
{
    BranchTrace trace("app", 3);
    BranchRecord rec;
    rec.pc = 0x100;
    rec.kind = BranchKind::Conditional;
    rec.instGap = 4;
    trace.append(rec);
    rec.kind = BranchKind::Call;
    rec.instGap = 2;
    trace.append(rec);
    EXPECT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.instructions(), 5u + 3u);
    EXPECT_EQ(trace.conditionals(), 1u);
    EXPECT_EQ(trace.app(), "app");
    EXPECT_EQ(trace.inputId(), 3u);
}

TEST(BranchTrace, SaveLoadRoundTrip)
{
    BranchTrace trace("roundtrip", 7);
    uint64_t seed = 5;
    for (int i = 0; i < 1000; ++i) {
        seed = seed * 2862933555777941757ULL + 3037000493ULL;
        BranchRecord rec;
        rec.pc = 0x400000 + (seed & 0xFFFF);
        rec.target = rec.pc + 16;
        rec.taken = (seed >> 17) & 1;
        rec.kind = static_cast<BranchKind>((seed >> 20) % 5);
        rec.instGap = (seed >> 24) & 0xF;
        trace.append(rec);
    }

    std::string path = "/tmp/whisper_test_trace.bin";
    ASSERT_TRUE(trace.save(path));

    BranchTrace loaded;
    ASSERT_TRUE(loaded.load(path).ok());
    ASSERT_EQ(loaded.size(), trace.size());
    EXPECT_EQ(loaded.app(), "roundtrip");
    EXPECT_EQ(loaded.inputId(), 7u);
    EXPECT_EQ(loaded.instructions(), trace.instructions());
    EXPECT_EQ(loaded.conditionals(), trace.conditionals());
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(loaded[i].pc, trace[i].pc);
        EXPECT_EQ(loaded[i].taken, trace[i].taken);
        EXPECT_EQ(loaded[i].kind, trace[i].kind);
        EXPECT_EQ(loaded[i].instGap, trace[i].instGap);
    }
    std::remove(path.c_str());
}

TEST(BranchTrace, LoadRejectsGarbage)
{
    std::string path = "/tmp/whisper_test_garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace", f);
    std::fclose(f);
    BranchTrace t;
    EXPECT_TRUE(t.load(path).corrupt());
    std::remove(path.c_str());
}

TEST(TraceSource, IteratesAndRewinds)
{
    BranchTrace trace("s", 0);
    for (int i = 0; i < 5; ++i) {
        BranchRecord rec;
        rec.pc = 0x10 * (i + 1);
        trace.append(rec);
    }
    TraceSource src(trace);
    BranchRecord rec;
    int n = 0;
    while (src.next(rec))
        ++n;
    EXPECT_EQ(n, 5);
    EXPECT_FALSE(src.next(rec));
    src.rewind();
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.pc, 0x10u);
}

TEST(LimitSource, Truncates)
{
    BranchTrace trace("s", 0);
    for (int i = 0; i < 10; ++i)
        trace.append(BranchRecord{});
    TraceSource inner(trace);
    LimitSource limited(inner, 4);
    BranchRecord rec;
    int n = 0;
    while (limited.next(rec))
        ++n;
    EXPECT_EQ(n, 4);
    limited.rewind();
    n = 0;
    while (limited.next(rec))
        ++n;
    EXPECT_EQ(n, 4);
}
