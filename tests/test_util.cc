/**
 * @file
 * Unit tests for src/util: bits, RNG, counters, histograms, stats.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/arena.hh"
#include "util/bits.hh"
#include "util/histogram.hh"
#include "util/rng.hh"
#include "util/sat_counter.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace whisper;

TEST(Bits, MaskBits)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 1u);
    EXPECT_EQ(maskBits(8), 0xFFu);
    EXPECT_EQ(maskBits(64), ~0ULL);
}

TEST(Bits, BitsOf)
{
    EXPECT_EQ(bitsOf(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bitsOf(0xABCD, 4, 4), 0xCu);
    EXPECT_EQ(bitsOf(0xABCD, 8, 8), 0xABu);
}

TEST(Bits, FoldXorIdentityWhenNarrow)
{
    // Values that fit within the width fold to themselves.
    EXPECT_EQ(foldXor(0x5A, 8), 0x5Au);
    EXPECT_EQ(foldXor(0x5A, 64), 0x5Au);
}

TEST(Bits, FoldXorChunks)
{
    // 0xAB in the high byte and 0xCD in the low byte: 8-bit fold
    // XORs them.
    EXPECT_EQ(foldXor(0xABCD, 8), 0xABu ^ 0xCDu);
}

TEST(Bits, FoldZeroWidth)
{
    EXPECT_EQ(foldXor(0x1234, 0), 0u);
}

TEST(Bits, PowersOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(48));
}

TEST(Bits, Logs)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
}

TEST(Bits, Mix64Distinct)
{
    std::set<uint64_t> seen;
    for (uint64_t i = 0; i < 1000; ++i)
        seen.insert(mix64(i));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(7);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    RunningStat st;
    for (int i = 0; i < 20000; ++i)
        st.add(rng.nextGaussian(2.0));
    EXPECT_NEAR(st.mean(), 0.0, 0.05);
    EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(17);
    auto p = rng.permutation(100);
    std::set<uint32_t> s(p.begin(), p.end());
    EXPECT_EQ(s.size(), 100u);
    EXPECT_EQ(*s.begin(), 0u);
    EXPECT_EQ(*s.rbegin(), 99u);
}

TEST(Rng, ShuffleDeterministic)
{
    std::vector<int> a{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> b = a;
    Rng r1(5), r2(5);
    r1.shuffle(a);
    r2.shuffle(b);
    EXPECT_EQ(a, b);
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.predictTaken());
    EXPECT_TRUE(c.isSaturated());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_FALSE(c.predictTaken());
}

TEST(SatCounter, WeakStates)
{
    SatCounter c(2, 1);
    EXPECT_TRUE(c.isWeak());
    c.increment();
    EXPECT_TRUE(c.isWeak());
    c.increment();
    EXPECT_FALSE(c.isWeak());
}

TEST(SignedSatCounter, Saturates)
{
    SignedSatCounter c(3);
    for (int i = 0; i < 10; ++i)
        c.update(true);
    EXPECT_EQ(c.value(), 3);
    for (int i = 0; i < 20; ++i)
        c.update(false);
    EXPECT_EQ(c.value(), -4);
}

TEST(SignedSatCounter, PredictBoundary)
{
    SignedSatCounter c(3, -1);
    EXPECT_FALSE(c.predictTaken());
    c.update(true);
    EXPECT_TRUE(c.predictTaken());
}

TEST(BucketHistogram, Buckets)
{
    BucketHistogram h({8, 16, 32});
    h.add(1);
    h.add(8);
    h.add(9);
    h.add(33, 5);
    EXPECT_EQ(h.numBuckets(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 5u);
    EXPECT_EQ(h.total(), 8u);
    EXPECT_DOUBLE_EQ(h.bucketFraction(3), 5.0 / 8.0);
}

TEST(BucketHistogram, Labels)
{
    BucketHistogram h({8, 16});
    EXPECT_EQ(h.bucketLabel(0), "0-8");
    EXPECT_EQ(h.bucketLabel(1), "9-16");
    EXPECT_EQ(h.bucketLabel(2), "16+");
}

TEST(CountHistogram, TopFraction)
{
    CountHistogram h;
    h.add(1, 60);
    h.add(2, 30);
    h.add(3, 10);
    EXPECT_DOUBLE_EQ(h.topFraction(1), 0.6);
    EXPECT_DOUBLE_EQ(h.topFraction(2), 0.9);
    EXPECT_DOUBLE_EQ(h.topFraction(10), 1.0);
    EXPECT_EQ(h.numKeys(), 3u);
}

TEST(RunningStat, Moments)
{
    RunningStat st;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        st.add(v);
    EXPECT_EQ(st.count(), 4u);
    EXPECT_DOUBLE_EQ(st.mean(), 2.5);
    EXPECT_DOUBLE_EQ(st.min(), 1.0);
    EXPECT_DOUBLE_EQ(st.max(), 4.0);
    EXPECT_NEAR(st.variance(), 1.25, 1e-9);
}

TEST(RatioStat, Basics)
{
    RatioStat r;
    r.record(true);
    r.record(false);
    r.record(true);
    EXPECT_EQ(r.hits(), 2u);
    EXPECT_EQ(r.misses(), 1u);
    EXPECT_NEAR(r.ratio(), 2.0 / 3.0, 1e-12);
}

TEST(Stats, SpeedupPercent)
{
    EXPECT_NEAR(speedupPercent(110, 100), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(speedupPercent(100, 100), 0.0);
}

TEST(Stats, GeoMean)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 1.0);
    EXPECT_NEAR(geoMean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Table, RendersRows)
{
    TableReporter t("demo");
    t.setHeader({"app", "x", "y"});
    t.addRow("alpha", {1.234, 5.678});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.23"), std::string::npos);
}

TEST(Table, Csv)
{
    TableReporter t("demo");
    t.setHeader({"a", "b"});
    t.addRow({"r", "1"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nr,1\n");
}

TEST(Arena, BumpAllocationAndAlignment)
{
    MonotonicArena arena(256);
    auto *a = static_cast<unsigned char *>(arena.allocate(10, 1));
    auto *b = static_cast<unsigned char *>(arena.allocate(10, 1));
    EXPECT_EQ(b, a + 10) << "bump allocation must be contiguous";

    auto *c = arena.allocate(1, 64);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
    EXPECT_EQ(arena.blockCount(), 1u);
}

TEST(Arena, GrowsAndOversizedRequestsGetExactBlocks)
{
    MonotonicArena arena(128);
    arena.allocate(100);
    arena.allocate(100); // exceeds the first block: second block
    EXPECT_EQ(arena.blockCount(), 2u);

    arena.allocate(4096); // far above blockBytes: dedicated block
    EXPECT_EQ(arena.blockCount(), 3u);
    EXPECT_GE(arena.reservedBytes(), 4096u + 2 * 128u);
}

TEST(Arena, ResetRecyclesBlocksWithoutNewReservations)
{
    MonotonicArena arena(256);
    for (int round = 0; round < 3; ++round) {
        arena.reset();
        EXPECT_EQ(arena.usedBytes(), 0u);
        for (int i = 0; i < 8; ++i)
            arena.allocate(100);
    }
    // Steady state: round 1 reserved everything rounds 2-3 needed.
    size_t blocks = arena.blockCount();
    arena.reset();
    for (int i = 0; i < 8; ++i)
        arena.allocate(100);
    EXPECT_EQ(arena.blockCount(), blocks);
}

TEST(Arena, AllocatorWorksWithStdVector)
{
    MonotonicArena arena;
    std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(arena)};
    for (int i = 0; i < 1000; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 1000u);
    EXPECT_EQ(v.front(), 0);
    EXPECT_EQ(v.back(), 999);
    EXPECT_GT(arena.usedBytes(), 1000u * sizeof(int) - 1);
}
