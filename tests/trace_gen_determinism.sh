#!/bin/sh
# Byte-determinism regression for whisper_trace_gen: the generator is
# a pure function of (app, input, records, drift spec). Same
# arguments must produce byte-identical traces, `--drift none` must
# be exactly the no-flag stream, drifting output must be
# deterministic yet different from the base stream, and malformed
# drift specs must be rejected with a non-zero exit.
set -e

BIN_DIR="$1"
WORK_DIR="${TMPDIR:-/tmp}/trace_gen_det_$$"
mkdir -p "$WORK_DIR"
trap 'rm -rf "$WORK_DIR"' EXIT

GEN="$BIN_DIR/whisper_trace_gen"

# Same arguments, byte-identical output.
"$GEN" --app kafka --input 0 --records 80000 \
    --out "$WORK_DIR/a.whrt" > /dev/null
"$GEN" --app kafka --input 0 --records 80000 \
    --out "$WORK_DIR/b.whrt" > /dev/null
cmp "$WORK_DIR/a.whrt" "$WORK_DIR/b.whrt"

# --drift none is an exact no-op.
"$GEN" --app kafka --input 0 --records 80000 --drift none \
    --out "$WORK_DIR/none.whrt" > /dev/null
cmp "$WORK_DIR/a.whrt" "$WORK_DIR/none.whrt"

# A drifting stream is deterministic...
DRIFT="phase:period=20000,phases=3,intensity=0.6,seed=5"
"$GEN" --app kafka --input 0 --records 80000 --drift "$DRIFT" \
    --out "$WORK_DIR/d1.whrt" > "$WORK_DIR/d1.txt"
"$GEN" --app kafka --input 0 --records 80000 --drift "$DRIFT" \
    --out "$WORK_DIR/d2.whrt" > /dev/null
cmp "$WORK_DIR/d1.whrt" "$WORK_DIR/d2.whrt"
# ...announces its canonical schedule...
grep -q "drift: phase:period=20000" "$WORK_DIR/d1.txt"
# ...and actually differs from the base stream.
if cmp -s "$WORK_DIR/a.whrt" "$WORK_DIR/d1.whrt"; then
    echo "drifting stream unexpectedly identical to base" >&2
    exit 1
fi

# Different inputs give different streams.
"$GEN" --app kafka --input 1 --records 80000 \
    --out "$WORK_DIR/i1.whrt" > /dev/null
if cmp -s "$WORK_DIR/a.whrt" "$WORK_DIR/i1.whrt"; then
    echo "input 0 and input 1 unexpectedly identical" >&2
    exit 1
fi

# Malformed drift specs must fail loudly, not generate garbage.
for BAD in "wobble:period=5" "phase" "phase:period=0" \
    "phase:period=5,bogus=1" "phase:intensity=2"; do
    if "$GEN" --app kafka --records 1000 --drift "$BAD" \
        --out "$WORK_DIR/bad.whrt" > /dev/null 2>&1; then
        echo "bad drift spec '$BAD' was accepted" >&2
        exit 1
    fi
done

echo "trace_gen determinism OK"
