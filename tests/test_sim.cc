/**
 * @file
 * Integration tests: profiler, classifier, analyses, and the full
 * cross-input experiment pipeline on small traces.
 */

#include <gtest/gtest.h>

#include "bp/simple_predictors.hh"
#include "sim/analysis.hh"
#include "trace/branch_trace.hh"
#include "sim/classifier.hh"
#include "sim/experiment.hh"
#include "util/rng.hh"

using namespace whisper;

namespace
{

ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.trainRecords = 300'000;
    cfg.testRecords = 250'000;
    cfg.profile.maxHardBranches = 512;
    return cfg;
}

} // namespace

TEST(Runner, CountsConditionalsOnly)
{
    const AppConfig &app = appByName("kafka");
    AppWorkload trace(app, 0, 50000);
    StaticPredictor pred(true);
    auto stats = runPredictor(trace, pred);
    EXPECT_GT(stats.conditionals, 30000u);
    EXPECT_GT(stats.instructions, stats.conditionals);
    EXPECT_GT(stats.mispredicts, 0u);
    EXPECT_LT(stats.accuracy(), 1.0);
}

TEST(Runner, WarmupExcludesEarlyStats)
{
    const AppConfig &app = appByName("kafka");
    AppWorkload trace(app, 0, 50000);
    IdealPredictor ideal;
    auto all = runPredictor(trace, ideal, 0.0);
    auto half = runPredictor(trace, ideal, 0.5);
    EXPECT_LT(half.instructions, all.instructions);
    EXPECT_GT(half.warmupInstructions, 0u);
    EXPECT_NEAR(static_cast<double>(half.instructions) /
                    (half.instructions + half.warmupInstructions),
                0.5, 0.05);
}

TEST(Profiler, CollectsEntriesAndHardTables)
{
    ExperimentConfig cfg = smallConfig();
    const AppConfig &app = appByName("cassandra");
    BranchProfile profile = profileApp(app, 0, cfg);

    EXPECT_GT(profile.numBranches(), 1000u);
    EXPECT_GT(profile.numHardBranches(), 20u);
    EXPECT_LE(profile.numHardBranches(),
              cfg.profile.maxHardBranches);
    EXPECT_GT(profile.totalMispredicts, 0u);

    for (const auto *e : profile.hardBranches()) {
        ASSERT_EQ(e->byLength.size(), profile.lengths().size());
        // Tables must actually hold samples.
        EXPECT_GT(e->byLength[0].totalSamples(), 0u);
        // Every length table of a branch holds the same samples.
        EXPECT_EQ(e->byLength[0].totalSamples(),
                  e->byLength[5].totalSamples());
        EXPECT_EQ(e->raw8.totalSamples(),
                  e->byLength[0].totalSamples());
        break; // the heaviest one suffices
    }
}

TEST(Profiler, HardSelectionRespectsThresholds)
{
    ExperimentConfig cfg = smallConfig();
    const AppConfig &app = appByName("tomcat");
    BranchProfile profile = profileApp(app, 0, cfg);
    for (const auto *e : profile.hardBranches()) {
        EXPECT_GE(e->baselineMispredicts,
                  cfg.profile.minMispredicts);
        EXPECT_LE(e->baselineAccuracy(), cfg.profile.maxAccuracy);
    }
}

TEST(Classifier, CapacityDominatesDataCenterApps)
{
    // The paper's Fig. 3 finding: capacity misses dominate.
    const AppConfig &app = appByName("mysql");
    AppWorkload trace(app, 0, 400000);
    auto tage = makeTage(64);
    auto breakdown = classifyMispredictions(trace, *tage);
    EXPECT_GT(breakdown.total, 1000u);
    double capacity =
        breakdown.fraction(MispredictClass::Capacity);
    EXPECT_GT(capacity,
              breakdown.fraction(MispredictClass::Compulsory));
    EXPECT_GT(capacity,
              breakdown.fraction(MispredictClass::Conflict));
    double sum = 0;
    for (auto c :
         {MispredictClass::Compulsory, MispredictClass::Capacity,
          MispredictClass::Conflict,
          MispredictClass::ConditionalOnData})
        sum += breakdown.fraction(c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Classifier, IdealPredictorHasNoMispredicts)
{
    const AppConfig &app = appByName("kafka");
    AppWorkload trace(app, 0, 50000);
    IdealPredictor ideal;
    auto breakdown = classifyMispredictions(trace, ideal);
    EXPECT_EQ(breakdown.total, 0u);
}

TEST(Analysis, MispredictCdfSpreadVsConcentrated)
{
    // Fig. 5: data center apps spread mispredictions across many
    // branches; SPEC-like apps concentrate them.
    auto cdfTop50 = [](const std::string &name) {
        AppWorkload trace(appByName(name), 0, 400000);
        auto tage = makeTage(64);
        auto hist = mispredictsPerBranch(trace, *tage);
        return hist.topFraction(50);
    };
    double dc = cdfTop50("mysql");
    double spec = cdfTop50("leela");
    EXPECT_LT(dc, spec);
    EXPECT_GT(spec, 0.35);
}

TEST(Analysis, HistoryLengthAttribution)
{
    ExperimentConfig cfg = smallConfig();
    const AppConfig &app = appByName("python");
    BranchProfile profile = profileApp(app, 0, cfg);
    auto hist = mispredictsByHistoryLength(profile);
    EXPECT_GT(hist.total(), 0u);
    // python's correlated branches start at series index 4
    // (length >= 26), so some mass must sit beyond the 9-16 bucket.
    double beyond16 = 0;
    for (size_t b = 2; b < hist.numBuckets(); ++b)
        beyond16 += hist.bucketFraction(b);
    EXPECT_GT(beyond16, 0.2);
}

TEST(Analysis, OpClassDistributionCoversExecutions)
{
    ExperimentConfig cfg = smallConfig();
    const AppConfig &app = appByName("mysql");
    BranchProfile profile = profileApp(app, 0, cfg);
    WhisperBuild build = trainWhisper(app, 0, profile, cfg);
    auto dist = opClassDistribution(profile, build.hints);
    EXPECT_GT(dist.total, 0u);
    // Strongly biased branches exist in every app.
    EXPECT_GT(dist.fraction(OpClass::AlwaysTaken), 0.05);
    double sum = 0;
    for (unsigned c = 0; c < 7; ++c)
        sum += dist.fraction(static_cast<OpClass>(c));
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Experiment, WhisperBeatsBaselineCrossInput)
{
    // The headline effect (Fig. 13) on one app. This one needs a
    // denser profile than the other tests: thin sample tables leave
    // too few hints to measure a reduction reliably.
    ExperimentConfig cfg = smallConfig();
    cfg.trainRecords = 1'000'000;
    cfg.testRecords = 800'000;
    cfg.profile.maxHardBranches = 2048;
    const AppConfig &app = appByName("mysql");
    BranchProfile profile = profileApp(app, 0, cfg);
    WhisperBuild build = trainWhisper(app, 0, profile, cfg);
    EXPECT_GT(build.hints.size(), 50u);
    EXPECT_EQ(build.placements.size(), build.hints.size());
    EXPECT_GT(build.overhead.dynamicIncreasePct, 0.0);

    auto base = makeTage(cfg.tageBudgetKB);
    auto s0 = evalApp(app, 1, cfg, *base, 0.5);
    auto wp = makeWhisperPredictor(cfg, build);
    auto s1 = evalApp(app, 1, cfg, *wp, 0.5);
    EXPECT_GT(reductionPercent(s0, s1), 5.0);
}

TEST(Experiment, RombfHelpsButLessThanWhisper)
{
    ExperimentConfig cfg = smallConfig();
    const AppConfig &app = appByName("mysql");
    BranchProfile profile = profileApp(app, 0, cfg);
    WhisperBuild build = trainWhisper(app, 0, profile, cfg);

    auto base = makeTage(cfg.tageBudgetKB);
    auto s0 = evalApp(app, 1, cfg, *base, 0.5);

    auto rombf = makeRombfPredictor(8, profile, cfg);
    auto sR = evalApp(app, 1, cfg, *rombf, 0.5);

    auto wp = makeWhisperPredictor(cfg, build);
    auto sW = evalApp(app, 1, cfg, *wp, 0.5);

    EXPECT_GT(reductionPercent(s0, sW), reductionPercent(s0, sR));
}

TEST(Experiment, IdealBeatsEverything)
{
    ExperimentConfig cfg = smallConfig();
    const AppConfig &app = appByName("drupal");
    auto base = makeTage(cfg.tageBudgetKB);
    auto s0 = evalApp(app, 1, cfg, *base, 0.5);
    IdealPredictor ideal;
    auto sI = evalApp(app, 1, cfg, ideal, 0.5);
    EXPECT_EQ(sI.mispredicts, 0u);
    EXPECT_GT(s0.mispredicts, 0u);
}

TEST(Experiment, MtageReducesCapacityMisses)
{
    ExperimentConfig cfg = smallConfig();
    const AppConfig &app = appByName("clang");
    auto base = makeTage(cfg.tageBudgetKB);
    auto s0 = evalApp(app, 1, cfg, *base, 0.5);
    auto mtage = makeMtage(cfg);
    auto s1 = evalApp(app, 1, cfg, *mtage, 0.5);
    EXPECT_GT(reductionPercent(s0, s1), 10.0);
}

TEST(Experiment, MergedProfilesCoverMoreBranches)
{
    // Fig. 18 mechanism: merging input profiles grows coverage.
    ExperimentConfig cfg = smallConfig();
    const AppConfig &app = appByName("wordpress");
    BranchProfile p0 = profileApp(app, 0, cfg);
    size_t solo = p0.numHardBranches();
    BranchProfile p1 = profileApp(app, 2, cfg);
    p0.mergeFrom(p1);
    EXPECT_GE(p0.numHardBranches(), solo);
    EXPECT_GT(p0.totalInstructions, p1.totalInstructions);
}

TEST(Experiment, PipelineSpeedupFromBetterPrediction)
{
    // Fig. 1 mechanism at small scale: the ideal direction
    // predictor must yield higher IPC than the 64KB baseline.
    ExperimentConfig cfg = smallConfig();
    const AppConfig &app = appByName("python");
    auto base = makeTage(cfg.tageBudgetKB);
    auto pBase = evalPipeline(app, 1, cfg, *base);
    IdealPredictor ideal;
    auto pIdeal = evalPipeline(app, 1, cfg, ideal);
    EXPECT_GT(pIdeal.ipc(), pBase.ipc());
    EXPECT_EQ(pIdeal.mispredicts, 0u);
    EXPECT_GT(pBase.squashCycles, 0.0);
}

TEST(TruthTableCacheSingleton, StableReference)
{
    const TruthTableCache &a = globalTruthTables();
    const TruthTableCache &b = globalTruthTables();
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.numInputs(), 8u);
}

namespace
{

/** Append one record to a trace. */
void
addRec(BranchTrace &t, uint64_t pc, bool taken,
       BranchKind kind = BranchKind::Conditional)
{
    BranchRecord rec;
    rec.pc = pc;
    rec.taken = taken;
    rec.kind = kind;
    rec.instGap = 4;
    t.append(rec);
}

} // namespace

TEST(ClassifierUnit, FirstReferenceIsCompulsory)
{
    // One branch, executed once, mispredicted by a static-NT
    // predictor: exactly one compulsory miss.
    BranchTrace t("unit", 0);
    addRec(t, 0x100, true);
    TraceSource src(t);
    StaticPredictor nt(false);
    auto b = classifyMispredictions(src, nt);
    EXPECT_EQ(b.total, 1u);
    EXPECT_EQ(b.counts[static_cast<size_t>(
                  MispredictClass::Compulsory)],
              1u);
}

TEST(ClassifierUnit, InconsistentSubstreamIsDataDependent)
{
    // Branch B executes in a *constant* history context (a long run
    // of always-taken A's precedes it every time) but resolves in
    // alternating directions: its substream recurs with mixed
    // outcomes -> conditional-on-data.
    BranchTrace t("unit", 0);
    Rng rng(3);
    for (int round = 0; round < 60; ++round) {
        for (int i = 0; i < 40; ++i)
            addRec(t, 0xA00, true);
        addRec(t, 0xB00, round % 2 == 0);
    }
    TraceSource src(t);
    StaticPredictor taken(true);
    auto b = classifyMispredictions(src, taken);
    // B mispredicts on every odd round (static-taken vs not-taken);
    // after warm-up those misses classify as conditional-on-data.
    EXPECT_GT(b.counts[static_cast<size_t>(
                  MispredictClass::ConditionalOnData)],
              15u);
}

TEST(ClassifierUnit, FreshContextsAreCapacity)
{
    // Branch C executes under a different history context every
    // time (a varying run-length of A's precedes it): each
    // occurrence after the first is a known-PC/new-substream miss,
    // the capacity signature.
    BranchTrace t("unit", 0);
    Rng rng(9);
    for (int round = 0; round < 80; ++round) {
        // Vary the context with a pseudo-random prefix pattern.
        for (int i = 0; i < 30; ++i)
            addRec(t, 0xA00 + 16 * (i % 3), rng.nextBool(0.5));
        addRec(t, 0xC00, false);
    }
    TraceSource src(t);
    StaticPredictor taken(true);
    auto b = classifyMispredictions(src, taken);
    uint64_t capacity =
        b.counts[static_cast<size_t>(MispredictClass::Capacity)];
    EXPECT_GT(capacity, 30u);
}

TEST(ClassifierUnit, FractionsSumToOne)
{
    BranchTrace t("unit", 0);
    Rng rng(5);
    for (int i = 0; i < 5000; ++i)
        addRec(t, 0x100 + 16 * (i % 37), rng.nextBool(0.6));
    TraceSource src(t);
    StaticPredictor nt(false);
    auto b = classifyMispredictions(src, nt);
    ASSERT_GT(b.total, 0u);
    uint64_t sum = 0;
    for (auto c : b.counts)
        sum += c;
    EXPECT_EQ(sum, b.total);
}
