/**
 * @file
 * Fault-tolerance tests: CRC32, the crash-safe hint-store journal
 * (torn-tail recovery, resume-from-epoch), corrupt-trace skipping,
 * hostile length fields, the fault-injection harness itself, and the
 * training pool's supervision (requeue, degradation, dead workers).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "service/fault_injection.hh"
#include "service/hint_journal.hh"
#include "service/hint_store.hh"
#include "service/trace_stream.hh"
#include "service/training_pool.hh"
#include "service/whisperd.hh"
#include "sim/experiment.hh"
#include "trace/branch_trace.hh"
#include "util/crc32.hh"
#include "workloads/app_workload.hh"

using namespace whisper;

namespace
{

/** Clears any installed fault spec around each test. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

VersionedHintBundle
makeBundle(uint64_t epoch, size_t hints)
{
    VersionedHintBundle v;
    v.epoch = epoch;
    v.validationAccuracy = 0.9 + 0.0001 * static_cast<double>(epoch);
    for (size_t i = 0; i < hints; ++i) {
        TrainedHint h;
        h.pc = 0x400000 + 16 * (epoch * 1000 + i);
        h.hint.pcPointer = BrHint::pcPointerFor(h.pc);
        h.hint.formula = static_cast<uint16_t>(i * 7 + epoch);
        h.historyLength = 64;
        v.bundle.hints.push_back(h);

        HintPlacement p;
        p.branchPc = h.pc;
        p.predecessorPc = h.pc - 16;
        p.coverage = 0.5;
        v.bundle.placements.push_back(p);
    }
    return v;
}

std::vector<BranchRecord>
kafkaRecords(uint32_t inputId, uint64_t count)
{
    AppWorkload workload(appByName("kafka"), inputId, count);
    std::vector<BranchRecord> records;
    records.reserve(count);
    BranchRecord rec;
    while (workload.next(rec))
        records.push_back(rec);
    return records;
}

long
fileSize(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return -1;
    std::fseek(f, 0, SEEK_END);
    long n = std::ftell(f);
    std::fclose(f);
    return n;
}

void
truncateFile(const std::string &path, long newSize)
{
    std::filesystem::resize_file(path,
                                 static_cast<uintmax_t>(newSize));
}

} // namespace

// --------------------------------------------------------------------
// CRC32
// --------------------------------------------------------------------

TEST(Crc32, KnownAnswer)
{
    // IEEE 802.3 check value for "123456789".
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, SeedChains)
{
    // Incremental CRC over two halves equals one shot.
    const char *s = "whisper journal record";
    uint32_t whole = crc32(s, 22);
    uint32_t half = crc32(s, 10);
    EXPECT_EQ(crc32(s + 10, 12, half), whole);
}

// --------------------------------------------------------------------
// HintJournal
// --------------------------------------------------------------------

TEST(HintJournal, AppendReplayRoundTrip)
{
    std::string path = "/tmp/whisper_test_journal.wal";
    std::remove(path.c_str());
    {
        HintJournal journal;
        std::vector<VersionedHintBundle> replayed;
        ASSERT_TRUE(journal.open(path, replayed).ok());
        EXPECT_TRUE(replayed.empty());
        ASSERT_TRUE(journal.append(makeBundle(1, 3)));
        ASSERT_TRUE(journal.append(makeBundle(2, 5)));
        ASSERT_TRUE(journal.append(makeBundle(3, 1)));
    }
    std::vector<VersionedHintBundle> replayed =
        HintJournal::replay(path);
    ASSERT_EQ(replayed.size(), 3u);
    EXPECT_TRUE(replayed[0] == makeBundle(1, 3));
    EXPECT_TRUE(replayed[1] == makeBundle(2, 5));
    EXPECT_TRUE(replayed[2] == makeBundle(3, 1));
    std::remove(path.c_str());
}

TEST(HintJournal, TornTailIsDiscardedAndCompacted)
{
    std::string path = "/tmp/whisper_test_journal_torn.wal";
    std::remove(path.c_str());
    {
        HintJournal journal;
        std::vector<VersionedHintBundle> replayed;
        ASSERT_TRUE(journal.open(path, replayed).ok());
        ASSERT_TRUE(journal.append(makeBundle(1, 4)));
        ASSERT_TRUE(journal.append(makeBundle(2, 4)));
    }
    // Simulate a crash mid-append: chop bytes off the last record.
    long full = fileSize(path);
    ASSERT_GT(full, 10);
    truncateFile(path, full - 7);

    HintJournal journal;
    std::vector<VersionedHintBundle> replayed;
    HintJournal::RecoveryInfo info;
    ASSERT_TRUE(journal.open(path, replayed, &info).ok());
    ASSERT_EQ(replayed.size(), 1u);
    // The surviving generation is bit-identical to what was written.
    EXPECT_TRUE(replayed[0] == makeBundle(1, 4));
    EXPECT_GT(info.tailBytesDiscarded, 0u);
    EXPECT_TRUE(info.compacted);

    // The compacted file replays clean, and appending after recovery
    // works.
    ASSERT_TRUE(journal.append(makeBundle(2, 6)));
    journal.close();
    std::vector<VersionedHintBundle> again =
        HintJournal::replay(path);
    ASSERT_EQ(again.size(), 2u);
    EXPECT_TRUE(again[1] == makeBundle(2, 6));
    std::remove(path.c_str());
}

TEST(HintJournal, GarbageTailAfterValidPrefix)
{
    std::string path = "/tmp/whisper_test_journal_garbage.wal";
    std::remove(path.c_str());
    {
        HintJournal journal;
        std::vector<VersionedHintBundle> replayed;
        ASSERT_TRUE(journal.open(path, replayed).ok());
        ASSERT_TRUE(journal.append(makeBundle(1, 2)));
    }
    {
        std::FILE *f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        std::fputs("garbage that is definitely not a record", f);
        std::fclose(f);
    }
    std::vector<VersionedHintBundle> replayed =
        HintJournal::replay(path);
    ASSERT_EQ(replayed.size(), 1u);
    EXPECT_TRUE(replayed[0] == makeBundle(1, 2));
    std::remove(path.c_str());
}

TEST_F(FaultTest, InjectedTornAppendSelfHeals)
{
    std::string path = "/tmp/whisper_test_journal_inject.wal";
    std::remove(path.c_str());
    // Second append (1-based) is torn.
    ASSERT_TRUE(FaultInjector::instance().configure(
        "truncate-journal=2"));

    HintJournal journal;
    std::vector<VersionedHintBundle> replayed;
    ASSERT_TRUE(journal.open(path, replayed).ok());
    EXPECT_TRUE(journal.append(makeBundle(1, 3)));
    EXPECT_FALSE(journal.append(makeBundle(2, 3))); // torn
    EXPECT_EQ(journal.appendFailures(), 1u);
    // The next append truncates back to the good offset first.
    EXPECT_TRUE(journal.append(makeBundle(3, 3)));
    EXPECT_EQ(journal.repairs(), 1u);
    journal.close();

    std::vector<VersionedHintBundle> again =
        HintJournal::replay(path);
    ASSERT_EQ(again.size(), 2u);
    EXPECT_TRUE(again[0] == makeBundle(1, 3));
    EXPECT_TRUE(again[1] == makeBundle(3, 3));
    EXPECT_EQ(FaultInjector::instance().writesTorn(), 1u);
    std::remove(path.c_str());
}

TEST(HintJournal, CompactionRacingConcurrentAppendThenReplay)
{
    // The restart race: whisperd reopens a torn journal (open()
    // compacts through temp file + atomic rename) and immediately
    // starts appending fresh deployments, while an observer —
    // a crashed-and-restarting reader, or an operator's inspection
    // tool — replays the same path concurrently. Every concurrent
    // replay must see a valid ascending prefix (rename is atomic,
    // a half-written append reads as a torn tail), and once the
    // writer is done a restart-replay must recover every generation
    // and land on the writer's exact final epoch.
    std::string path = "/tmp/whisper_test_journal_race.wal";
    std::remove(path.c_str());
    constexpr uint64_t kSeedGens = 6;
    constexpr uint64_t kLiveGens = 40;
    {
        HintJournal journal;
        std::vector<VersionedHintBundle> replayed;
        ASSERT_TRUE(journal.open(path, replayed).ok());
        for (uint64_t e = 1; e <= kSeedGens; ++e)
            ASSERT_TRUE(journal.append(makeBundle(e, 3)));
    }
    // Crash mid-append: tear the last record so open() must compact.
    long full = fileSize(path);
    ASSERT_GT(full, 10);
    truncateFile(path, full - 9);

    std::atomic<bool> writerDone{false};
    std::atomic<bool> replayBroken{false};
    std::atomic<uint64_t> replays{0};
    std::thread reader([&] {
        while (!writerDone.load()) {
            std::vector<VersionedHintBundle> seen =
                HintJournal::replay(path);
            ++replays;
            uint64_t prev = 0;
            for (const auto &gen : seen) {
                if (gen.epoch <= prev ||
                    gen.epoch > kSeedGens + kLiveGens) {
                    replayBroken = true;
                    return;
                }
                prev = gen.epoch;
            }
        }
    });

    HintJournal journal;
    std::vector<VersionedHintBundle> replayed;
    HintJournal::RecoveryInfo info;
    ASSERT_TRUE(journal.open(path, replayed, &info).ok());
    ASSERT_EQ(replayed.size(), kSeedGens - 1); // torn gen dropped
    EXPECT_TRUE(info.compacted);
    uint64_t epoch = replayed.back().epoch;
    for (uint64_t i = 0; i < kLiveGens; ++i)
        ASSERT_TRUE(journal.append(makeBundle(++epoch, 2)));
    journal.close();
    writerDone = true;
    reader.join();

    EXPECT_FALSE(replayBroken.load());
    EXPECT_GT(replays.load(), 0u);

    // Restart-replay: the post-compaction journal recovers the
    // surviving seed prefix plus every live append, ending on the
    // writer's final epoch.
    std::vector<VersionedHintBundle> recovered =
        HintJournal::replay(path);
    ASSERT_EQ(recovered.size(), kSeedGens - 1 + kLiveGens);
    EXPECT_EQ(recovered.back().epoch, epoch);
    for (size_t i = 1; i < recovered.size(); ++i)
        EXPECT_LT(recovered[i - 1].epoch, recovered[i].epoch);

    // And a HintStore restored from it resumes at that epoch.
    HintStore store;
    EXPECT_EQ(store.restore(std::move(recovered)),
              kSeedGens - 1 + kLiveGens);
    EXPECT_EQ(store.epoch(), epoch);
    std::remove(path.c_str());
}

// --------------------------------------------------------------------
// HintStore restore / journaled deployment
// --------------------------------------------------------------------

TEST(HintStore, RestoreResumesEpochNumbering)
{
    HintStore store;
    std::vector<VersionedHintBundle> history;
    history.push_back(makeBundle(3, 2));
    history.push_back(makeBundle(7, 4));
    EXPECT_EQ(store.restore(std::move(history)), 2u);

    EXPECT_EQ(store.epoch(), 7u);
    EXPECT_EQ(store.generations(), 2u);
    ASSERT_NE(store.current(), nullptr);
    EXPECT_EQ(store.current()->bundle.hints.size(), 4u);

    // New deployments continue after the restored epoch, not from 1.
    HintBundle next;
    next.hints.resize(9);
    ASSERT_TRUE(store.propose(next, 0.99, 0.90));
    EXPECT_EQ(store.epoch(), 8u);

    // And rollback after restore returns to the restored generation
    // (the epoch-7 payload), under a fresh epoch number.
    ASSERT_TRUE(store.rollback());
    EXPECT_EQ(store.epoch(), 9u);
    EXPECT_EQ(store.current()->bundle.hints.size(), 4u);
}

TEST(HintStore, RestoreDropsNonMonotonicEpochs)
{
    HintStore store;
    std::vector<VersionedHintBundle> history;
    history.push_back(makeBundle(2, 1));
    history.push_back(makeBundle(2, 2)); // duplicate: dropped
    history.push_back(makeBundle(1, 3)); // regression: dropped
    history.push_back(makeBundle(5, 4));
    EXPECT_EQ(store.restore(std::move(history)), 2u);
    EXPECT_EQ(store.epoch(), 5u);
    EXPECT_EQ(store.current()->bundle.hints.size(), 4u);
}

TEST(HintStore, JournaledDeploymentsSurviveRestart)
{
    std::string path = "/tmp/whisper_test_store_journal.wal";
    std::remove(path.c_str());

    // First life: journal two accepted generations.
    {
        HintJournal journal;
        std::vector<VersionedHintBundle> replayed;
        ASSERT_TRUE(journal.open(path, replayed).ok());
        HintStore store;
        store.attachJournal(&journal);
        HintBundle g1, g2;
        g1.hints.resize(2);
        g2.hints.resize(6);
        ASSERT_TRUE(store.propose(g1, 0.91, 0.90));
        ASSERT_TRUE(store.propose(g2, 0.93, 0.91));
        EXPECT_EQ(store.epoch(), 2u);
    }

    // Second life: replay, restore, resume.
    {
        HintJournal journal;
        std::vector<VersionedHintBundle> replayed;
        ASSERT_TRUE(journal.open(path, replayed).ok());
        ASSERT_EQ(replayed.size(), 2u);
        HintStore store;
        ASSERT_EQ(store.restore(std::move(replayed)), 2u);
        store.attachJournal(&journal);
        EXPECT_EQ(store.epoch(), 2u);
        EXPECT_EQ(store.current()->bundle.hints.size(), 6u);

        HintBundle g3;
        g3.hints.resize(8);
        ASSERT_TRUE(store.propose(g3, 0.95, 0.93));
        EXPECT_EQ(store.epoch(), 3u);
    }

    std::vector<VersionedHintBundle> persisted =
        HintJournal::replay(path);
    ASSERT_EQ(persisted.size(), 3u);
    EXPECT_EQ(persisted[2].epoch, 3u);
    EXPECT_EQ(persisted[2].bundle.hints.size(), 8u);
    std::remove(path.c_str());
}

// --------------------------------------------------------------------
// Corrupt trace streams
// --------------------------------------------------------------------

TEST_F(FaultTest, CorruptFrameIsSkippedAndCounted)
{
    BranchTrace trace("kafka", 0);
    for (const BranchRecord &rec : kafkaRecords(0, 50'000))
        trace.append(rec);
    std::string path = "/tmp/whisper_test_corrupt_frame.whrt";
    ASSERT_TRUE(trace.save(path));

    // Corrupt every 2nd frame: roughly half the stream survives.
    ASSERT_TRUE(
        FaultInjector::instance().configure("flip-chunks=2,seed=11"));

    TraceStreamReader reader(path);
    ASSERT_TRUE(reader.valid());
    std::vector<BranchRecord> got, chunk;
    while (reader.readChunk(chunk, 10'000) > 0)
        got.insert(got.end(), chunk.begin(), chunk.end());
    std::remove(path.c_str());

    EXPECT_GT(reader.framesSkipped(), 0u);
    EXPECT_GT(reader.recordsSkipped(), 0u);
    EXPECT_GT(got.size(), 0u);
    EXPECT_EQ(got.size() + reader.recordsSkipped(), trace.size());
    EXPECT_GT(FaultInjector::instance().framesCorrupted(), 0u);
}

TEST_F(FaultTest, TransientReadErrorsAreRetried)
{
    BranchTrace trace("kafka", 0);
    for (const BranchRecord &rec : kafkaRecords(0, 20'000))
        trace.append(rec);
    std::string path = "/tmp/whisper_test_retry.whrt";
    ASSERT_TRUE(trace.save(path));

    ASSERT_TRUE(FaultInjector::instance().configure("fail-read=2"));

    TraceStreamReader reader(path);
    ASSERT_TRUE(reader.valid());
    std::vector<BranchRecord> got, chunk;
    while (reader.readChunk(chunk, 6'000) > 0)
        got.insert(got.end(), chunk.begin(), chunk.end());
    std::remove(path.c_str());

    // Retries absorbed the transient errors: nothing lost.
    EXPECT_EQ(got.size(), trace.size());
    EXPECT_GE(reader.readRetries(), 2u);
    EXPECT_EQ(reader.framesSkipped(), 0u);
}

TEST(TraceStream, TornTraceTailIsSkippedNotFatal)
{
    BranchTrace trace("kafka", 0);
    for (const BranchRecord &rec : kafkaRecords(0, 40'000))
        trace.append(rec);
    std::string path = "/tmp/whisper_test_torn_trace.whrt";
    ASSERT_TRUE(trace.save(path));
    long full = fileSize(path);
    truncateFile(path, full - 1000); // tear the last frame

    TraceStreamReader reader(path);
    ASSERT_TRUE(reader.valid());
    std::vector<BranchRecord> got, chunk;
    while (reader.readChunk(chunk, 16'384) > 0)
        got.insert(got.end(), chunk.begin(), chunk.end());
    std::remove(path.c_str());

    EXPECT_GT(got.size(), 0u);
    EXPECT_LT(got.size(), trace.size());
    EXPECT_GE(reader.framesSkipped(), 1u);
    EXPECT_EQ(got.size() + reader.recordsSkipped(), trace.size());
}

TEST(TraceStream, HostileRecordCountDoesNotAllocate)
{
    // A header claiming 2^60 records must be rejected by the
    // file-size cap, not drive a giant allocation.
    std::string path = "/tmp/whisper_test_hostile.whrt";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    uint32_t magic = BranchTrace::kFileMagic;
    uint32_t version = BranchTrace::kFileVersion;
    uint32_t nameLen = 1;
    uint32_t inputId = 0;
    uint64_t huge = 1ULL << 60;
    std::fwrite(&magic, sizeof magic, 1, f);
    std::fwrite(&version, sizeof version, 1, f);
    std::fwrite(&nameLen, sizeof nameLen, 1, f);
    std::fputc('x', f);
    std::fwrite(&inputId, sizeof inputId, 1, f);
    std::fwrite(&huge, sizeof huge, 1, f);
    std::fclose(f);

    BranchTrace t;
    IoStatus st = t.load(path);
    EXPECT_TRUE(st.corrupt());
    EXPECT_NE(st.message.find("record count"), std::string::npos);

    // Hostile per-frame count: capped by kMaxFrameRecords, the
    // streaming reader skips it rather than allocating.
    f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    uint32_t frameMagic = BranchTrace::kFrameMagic;
    uint32_t hugeCount = 0x7fffffff, crc = 0;
    std::fwrite(&frameMagic, sizeof frameMagic, 1, f);
    std::fwrite(&hugeCount, sizeof hugeCount, 1, f);
    std::fwrite(&crc, sizeof crc, 1, f);
    std::fclose(f);
    TraceStreamReader reader(path);
    ASSERT_TRUE(reader.valid());
    std::vector<BranchRecord> chunk;
    EXPECT_EQ(reader.readChunk(chunk, 1000), 0u);
    EXPECT_GE(reader.framesSkipped(), 1u);
    std::remove(path.c_str());
}

TEST(TraceStream, MissingVsCorruptAreDistinguished)
{
    TraceStreamReader missing("/tmp/whisper_no_such_trace.whrt");
    EXPECT_FALSE(missing.valid());
    EXPECT_TRUE(missing.status().missing());

    std::string path = "/tmp/whisper_test_distinguish.whrt";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("definitely not a trace header", f);
    std::fclose(f);
    TraceStreamReader corrupt(path);
    EXPECT_FALSE(corrupt.valid());
    EXPECT_TRUE(corrupt.status().corrupt());
    std::remove(path.c_str());

    BranchTrace t;
    EXPECT_TRUE(t.load("/tmp/whisper_no_such_trace.whrt").missing());
    EXPECT_TRUE(t.load(path.c_str()).missing()); // removed above
}

// --------------------------------------------------------------------
// FaultInjector spec parsing
// --------------------------------------------------------------------

TEST_F(FaultTest, SpecParsing)
{
    FaultInjector &fi = FaultInjector::instance();
    std::string error;
    EXPECT_TRUE(fi.configure("", &error));
    EXPECT_FALSE(fi.enabled());

    EXPECT_TRUE(fi.configure(
        "flip-chunks=0.01,fail-read=3,truncate-journal,"
        "stall-worker=2:100,kill-worker=0,fail-train=1:2,seed=42",
        &error))
        << error;
    EXPECT_TRUE(fi.enabled());

    EXPECT_FALSE(fi.configure("no-such-fault", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(fi.configure("flip-chunks=abc", &error));
}

// --------------------------------------------------------------------
// TrainingPool supervision
// --------------------------------------------------------------------

namespace
{

struct PoolFixture
{
    ExperimentConfig ecfg;
    BranchProfile profile;
    WhisperTrainer trainer;
    std::vector<TrainedHint> serial;

    PoolFixture()
        : ecfg(makeCfg()),
          profile(profileApp(appByName("kafka"), 0, ecfg)),
          trainer(ecfg.whisper, globalTruthTables()),
          serial(trainer.train(profile))
    {
    }

    static ExperimentConfig
    makeCfg()
    {
        ExperimentConfig cfg;
        cfg.trainRecords = 60'000;
        cfg.profile.maxHardBranches = 32;
        return cfg;
    }
};

} // namespace

TEST_F(FaultTest, StalledWorkerTaskIsRequeuedAndResultUnchanged)
{
    PoolFixture fx;
    // Worker 0 stalls 1.5s on its first task; the deadline is far
    // shorter, so the supervisor requeues it and another worker
    // finishes the branch. The deadline still leaves generous room
    // for honest training even under sanitizer slowdown.
    ASSERT_TRUE(FaultInjector::instance().configure(
        "stall-worker=0:1500"));
    TrainingPoolOptions opts;
    opts.workers = 4;
    opts.taskDeadlineMs = 400;
    opts.superviseIntervalMs = 10;
    opts.maxAttempts = 6;
    TrainingPool pool(opts);
    std::vector<TrainedHint> hints =
        pool.train(fx.trainer, fx.profile);

    ASSERT_EQ(hints.size(), fx.serial.size());
    for (size_t i = 0; i < hints.size(); ++i)
        EXPECT_TRUE(hints[i] == fx.serial[i]) << "hint " << i;
    EXPECT_GE(pool.supervision().tasksRequeued, 1u);
    EXPECT_EQ(pool.supervision().branchesDegraded, 0u);
}

TEST_F(FaultTest, KilledWorkerTaskIsRecovered)
{
    PoolFixture fx;
    ASSERT_TRUE(
        FaultInjector::instance().configure("kill-worker=1"));
    TrainingPoolOptions opts;
    opts.workers = 4;
    opts.taskDeadlineMs = 400;
    opts.superviseIntervalMs = 10;
    opts.maxAttempts = 6;
    TrainingPool pool(opts);
    std::vector<TrainedHint> hints =
        pool.train(fx.trainer, fx.profile);

    ASSERT_EQ(hints.size(), fx.serial.size());
    for (size_t i = 0; i < hints.size(); ++i)
        EXPECT_TRUE(hints[i] == fx.serial[i]) << "hint " << i;
    EXPECT_EQ(pool.supervision().workersDied, 1u);
    EXPECT_GE(pool.supervision().tasksRequeued, 1u);
}

TEST_F(FaultTest, RepeatedlyFailingBranchIsDegraded)
{
    PoolFixture fx;
    // Work item 0 always fails: after maxAttempts it must be dropped
    // (TAGE-SC-L fallback), not retried forever.
    ASSERT_TRUE(
        FaultInjector::instance().configure("fail-train=0:1000000"));
    TrainingPoolOptions opts;
    opts.workers = 2;
    opts.taskDeadlineMs = 0; // supervision not needed for this path
    opts.maxAttempts = 3;
    TrainingPool pool(opts);
    std::vector<TrainedHint> hints =
        pool.train(fx.trainer, fx.profile);

    // Everything except the degraded branch trains normally. The
    // serial reference includes work item 0 only if it produced a
    // hint; degraded output must be a subset missing at most that
    // one branch.
    EXPECT_GE(pool.supervision().taskFailures, 3u);
    EXPECT_EQ(pool.supervision().branchesDegraded, 1u);
    EXPECT_GE(hints.size() + 1, fx.serial.size());
    for (const TrainedHint &h : hints) {
        bool found = false;
        for (const TrainedHint &s : fx.serial)
            found = found || h == s;
        EXPECT_TRUE(found) << "unexpected hint for pc " << h.pc;
    }
}

TEST_F(FaultTest, TransientTrainingFailureRetriesToSameResult)
{
    PoolFixture fx;
    // Work item 0 fails once, then succeeds: the retry must land the
    // exact same bundle as the serial trainer.
    ASSERT_TRUE(
        FaultInjector::instance().configure("fail-train=0:1"));
    TrainingPoolOptions opts;
    opts.workers = 2;
    opts.maxAttempts = 3;
    TrainingPool pool(opts);
    std::vector<TrainedHint> hints =
        pool.train(fx.trainer, fx.profile);

    ASSERT_EQ(hints.size(), fx.serial.size());
    for (size_t i = 0; i < hints.size(); ++i)
        EXPECT_TRUE(hints[i] == fx.serial[i]) << "hint " << i;
    EXPECT_EQ(pool.supervision().taskFailures, 1u);
    EXPECT_EQ(pool.supervision().branchesDegraded, 0u);
}

// --------------------------------------------------------------------
// Whisperd end to end: crash recovery and fault-injected runs
// --------------------------------------------------------------------

namespace
{

namespace fs = std::filesystem;

/** Write kafka chunks into @p dir as several .whrt files. */
void
writeChunkDir(const fs::path &dir, uint64_t perFile, int files)
{
    fs::remove_all(dir);
    fs::create_directories(dir);
    for (int i = 0; i < files; ++i) {
        BranchTrace t("kafka", static_cast<uint32_t>(i % 2));
        for (const BranchRecord &rec :
             kafkaRecords(static_cast<uint32_t>(i % 2), perFile))
            t.append(rec);
        char name[32];
        std::snprintf(name, sizeof name, "%03d_kafka.whrt", i);
        ASSERT_TRUE(t.save((dir / name).string()));
    }
}

WhisperdConfig
demonConfig(const std::string &journal)
{
    WhisperdConfig cfg;
    cfg.chunkRecords = 12'000;
    cfg.epochChunks = 2;
    cfg.trainWorkers = 2;
    cfg.profileShards = 2;
    cfg.profilePolicy.maxHardBranches = 32;
    cfg.verbose = false;
    cfg.journalPath = journal;
    cfg.trainTaskDeadlineMs = 5'000;
    // Deploy every epoch so the test sees a deterministic number of
    // journaled generations regardless of validation noise.
    cfg.acceptMargin = -1.0;
    return cfg;
}

} // namespace

TEST_F(FaultTest, WhisperdResumesFromJournalAfterCrash)
{
    fs::path dir = "/tmp/whisper_test_crash_dir";
    std::string journal = "/tmp/whisper_test_crash.wal";
    std::remove(journal.c_str());
    writeChunkDir(dir, 30'000, 3);

    // First life: deploy at least two epochs, journaled.
    uint64_t firstEpoch = 0;
    VersionedHintBundle lastDeployed;
    {
        Whisperd daemon(demonConfig(journal), globalTruthTables());
        daemon.run(dir.string());
        ASSERT_NE(daemon.store().current(), nullptr);
        ASSERT_GE(daemon.store().epoch(), 2u)
            << "need >=2 deployed epochs for the crash test";
        firstEpoch = daemon.store().epoch();
        lastDeployed = *daemon.store().current();
        // No clean shutdown path is exercised: the daemon object is
        // simply destroyed, as after a crash (the journal is synced
        // per-append, so nothing depends on a destructor).
    }

    // The crash tears the journal mid-record.
    long full = fileSize(journal);
    ASSERT_GT(full, 12);
    truncateFile(journal, full - 5);

    // Second life: must resume from the last *intact* epoch with a
    // bit-identical deployed bundle.
    {
        Whisperd daemon(demonConfig(journal), globalTruthTables());
        EXPECT_EQ(daemon.resumedEpoch(), firstEpoch - 1);
        EXPECT_EQ(daemon.recoveredGenerations(), firstEpoch - 1);
        ASSERT_NE(daemon.store().current(), nullptr);

        // Re-derive what the first life deployed at that epoch from
        // the journal itself (pre-truncation it held everything).
        std::vector<VersionedHintBundle> replayed =
            HintJournal::replay(journal);
        ASSERT_EQ(replayed.size(), firstEpoch - 1);
        EXPECT_TRUE(*daemon.store().current() == replayed.back());

        // And it keeps operating: run more chunks, epochs continue
        // past the resumed number.
        daemon.run(dir.string());
        EXPECT_GT(daemon.store().epoch(), firstEpoch - 1);
    }

    fs::remove_all(dir);
    std::remove(journal.c_str());
}

TEST_F(FaultTest, WhisperdSurvivesCombinedFaults)
{
    fs::path dir = "/tmp/whisper_test_faulty_dir";
    std::string journal = "/tmp/whisper_test_faulty.wal";
    std::remove(journal.c_str());
    writeChunkDir(dir, 30'000, 3);

    // The acceptance scenario: ~1% corrupt frames, one stalled
    // worker, one torn journal write.
    ASSERT_TRUE(FaultInjector::instance().configure(
        "flip-chunks=0.01,stall-worker=0:300,truncate-journal=1"));

    WhisperdConfig cfg = demonConfig(journal);
    cfg.trainTaskDeadlineMs = 100;
    Whisperd daemon(cfg, globalTruthTables());
    daemon.run(dir.string());

    const ServiceMetrics &m = daemon.metrics();
    EXPECT_GE(daemon.epochsRun(), 1u);
    EXPECT_GT(m.chunksSkipped, 0u);
    EXPECT_GT(m.recordsSkipped, 0u);
    // The torn write shows up and was repaired on the next append.
    if (daemon.store().accepted() >= 2) {
        EXPECT_GE(m.journalAppendFailures, 1u);
        EXPECT_GE(m.journalRepairs, 1u);
    }
    // The journal still replays to exactly the durable generations.
    std::vector<VersionedHintBundle> replayed =
        HintJournal::replay(journal);
    for (size_t i = 1; i < replayed.size(); ++i)
        EXPECT_GT(replayed[i].epoch, replayed[i - 1].epoch);

    fs::remove_all(dir);
    std::remove(journal.c_str());
}
