#!/bin/sh
# Mixed-fleet demo of the multi-tenant whisperd: all twelve data
# center applications stream chunks into one service concurrently at
# different rates (kafka is a 10x "noisy neighbor"), each tenant
# trains and deploys through its own pipeline, and the run asserts
#
#   isolation  — every tenant's deployed bundle is byte-identical to
#                the bundle from a solo run over the same chunks, and
#   fairness   — the noisy tenant cannot starve the others: every
#                app completes at least one training epoch.
#
# A second service instance is then killed (-9) mid-run and a
# restarted daemon must resume every deployed tenant from its own
# per-app journal. With
#   whisperd_fleet_demo.sh BIN_DIR --fault-spec SPEC
# the main run additionally executes under the deterministic
# fault-injection harness and must still complete.
set -e

BIN_DIR="$1"
FAULT_SPEC=""
if [ "$2" = "--fault-spec" ]; then
    FAULT_SPEC="$3"
fi
WORK_DIR="${TMPDIR:-/tmp}/whisperd_fleet_$$"
mkdir -p "$WORK_DIR/chunks" "$WORK_DIR/journals" "$WORK_DIR/out" \
    "$WORK_DIR/solo_chunks" "$WORK_DIR/solo_journals" \
    "$WORK_DIR/solo_out"
trap 'rm -rf "$WORK_DIR"' EXIT

APPS="cassandra clang drupal finagle-chirper finagle-http kafka \
mediawiki mysql postgres python tomcat wordpress"
NOISY="kafka"

# Interleaved arrival: file names encode a round-robin schedule, so
# chunks of different tenants alternate in ingest order. The noisy
# tenant emits one file per round; the quiet ones only in round 0.
seq=0
round=0
while [ "$round" -lt 10 ]; do
    for app in $APPS; do
        if [ "$round" -gt 0 ] && [ "$app" != "$NOISY" ]; then
            continue
        fi
        name=$(printf '%03d_%s_i0.whrt' "$seq" "$app")
        "$BIN_DIR/whisper_trace_gen" --app "$app" --input 0 \
            --records 60000 \
            --out "$WORK_DIR/chunks/$name" > /dev/null
        seq=$((seq + 1))
    done
    round=$((round + 1))
done

TENANTS=$(echo $APPS | tr ' ' ',')
FAULT_ARGS=""
if [ -n "$FAULT_SPEC" ]; then
    FAULT_ARGS="--fault-spec $FAULT_SPEC --deadline-ms 200"
fi

"$BIN_DIR/whisperd" --chunks "$WORK_DIR/chunks" \
    --tenants "$TENANTS" \
    --journal-dir "$WORK_DIR/journals" \
    --out-dir "$WORK_DIR/out" \
    --chunk-records 20000 --epoch-chunks 2 \
    --workers 2 --max-hard 128 $FAULT_ARGS \
    > "$WORK_DIR/fleet.txt" 2>&1
cat "$WORK_DIR/fleet.txt"

if [ -n "$FAULT_SPEC" ]; then
    grep -q "fault injection armed" "$WORK_DIR/fleet.txt"
fi
grep -q "whisperd per-tenant metrics" "$WORK_DIR/fleet.txt"

# Fairness: every tenant — not just the noisy one — trained.
for app in $APPS; do
    EPOCHS=$(sed -n \
        "s/^whisperd\[$app\]: epochs=\([0-9]*\).*/\1/p" \
        "$WORK_DIR/fleet.txt")
    [ -n "$EPOCHS" ] || {
        echo "FAIL: no per-app metrics line for $app"; exit 1; }
    [ "$EPOCHS" -ge 1 ] || {
        echo "FAIL: tenant $app starved (epochs=$EPOCHS)"; exit 1; }
    # Every tenant has its own journal file.
    [ -f "$WORK_DIR/journals/$app.journal" ] || {
        echo "FAIL: missing journal for $app"; exit 1; }
done
NOISY_EPOCHS=$(sed -n \
    "s/^whisperd\[$NOISY\]: epochs=\([0-9]*\).*/\1/p" \
    "$WORK_DIR/fleet.txt")
[ "$NOISY_EPOCHS" -ge 3 ] || {
    echo "FAIL: noisy tenant only ran $NOISY_EPOCHS epochs"; exit 1; }

# At least one tenant must have deployed a bundle, or the isolation
# and resume legs below would be vacuous.
TOTAL_ACCEPTED=$(sed -n \
    's/^whisperd\[.*\]: epochs=.* accepted=\([0-9]*\).*/\1/p' \
    "$WORK_DIR/fleet.txt" | awk '{s += $1} END {print s}')
[ "$TOTAL_ACCEPTED" -ge 1 ] || {
    echo "FAIL: no tenant deployed a bundle"; exit 1; }

# Isolation: rerun one quiet tenant's chunks alone; its bundle must
# be byte-identical to the one produced in the full fleet.
ISO_APP="mysql"
if [ ! -f "$WORK_DIR/out/$ISO_APP.vhints" ]; then
    # Validation happened to reject mysql's bundles; fall back to
    # any tenant that did deploy.
    ISO_APP=$(ls "$WORK_DIR/out" | sed -n 's/\.vhints$//p' |
        head -n 1)
fi
cp "$WORK_DIR"/chunks/*_${ISO_APP}_*.whrt "$WORK_DIR/solo_chunks/"
"$BIN_DIR/whisperd" --chunks "$WORK_DIR/solo_chunks" \
    --tenants "$ISO_APP" \
    --journal-dir "$WORK_DIR/solo_journals" \
    --out-dir "$WORK_DIR/solo_out" \
    --chunk-records 20000 --epoch-chunks 2 \
    --workers 2 --max-hard 128 \
    > "$WORK_DIR/solo.txt" 2>&1
cmp "$WORK_DIR/out/$ISO_APP.vhints" \
    "$WORK_DIR/solo_out/$ISO_APP.vhints" || {
    echo "FAIL: $ISO_APP fleet bundle differs from solo bundle"
    exit 1; }

# Crash-recovery: run again on the same journals, kill -9 mid-run,
# then check a restarted service resumes every previously deployed
# tenant from its own journal instead of epoch 0.
"$BIN_DIR/whisperd" --chunks "$WORK_DIR/chunks" \
    --tenants "$TENANTS" \
    --journal-dir "$WORK_DIR/journals" \
    --chunk-records 20000 --epoch-chunks 2 \
    --workers 2 --max-hard 128 \
    > "$WORK_DIR/fleet_bg.txt" 2>&1 &
BG_PID=$!
i=0
while [ "$i" -lt 150 ]; do
    if grep -q "epoch" "$WORK_DIR/fleet_bg.txt" 2> /dev/null; then
        break
    fi
    kill -0 "$BG_PID" 2> /dev/null || break
    sleep 0.2
    i=$((i + 1))
done
kill -9 "$BG_PID" 2> /dev/null || true
wait "$BG_PID" 2> /dev/null || true

"$BIN_DIR/whisperd" --chunks "$WORK_DIR/chunks" \
    --tenants "$TENANTS" \
    --journal-dir "$WORK_DIR/journals" \
    --chunk-records 20000 --epoch-chunks 2 \
    --workers 2 --max-hard 128 \
    > "$WORK_DIR/restart.txt" 2>&1
cat "$WORK_DIR/restart.txt"

RESUMED_TENANTS=0
for app in $APPS; do
    ACCEPTED=$(sed -n \
        "s/^whisperd\[$app\]: epochs=.* accepted=\([0-9]*\).*/\1/p" \
        "$WORK_DIR/fleet.txt")
    RESUMED=$(sed -n \
        "s/^whisperd\[$app\]:.* resumed-epoch=\([0-9]*\).*/\1/p" \
        "$WORK_DIR/restart.txt")
    if [ "${ACCEPTED:-0}" -ge 1 ]; then
        [ "${RESUMED:-0}" -ge 1 ] || {
            echo "FAIL: $app deployed in phase 1 but restarted at" \
                "epoch ${RESUMED:-0}"; exit 1; }
        RESUMED_TENANTS=$((RESUMED_TENANTS + 1))
    fi
done
[ "$RESUMED_TENANTS" -ge 1 ]

echo "whisperd fleet demo OK ($RESUMED_TENANTS tenants resumed," \
    "noisy epochs $NOISY_EPOCHS, isolation app $ISO_APP)"
