/**
 * @file
 * Unit tests for src/bp: simple predictors, perceptron, and
 * TAGE-SC-L learning behaviour.
 */

#include <gtest/gtest.h>

#include <functional>

#include "bp/perceptron.hh"
#include "bp/simple_predictors.hh"
#include "bp/tage_scl.hh"
#include "util/rng.hh"

using namespace whisper;

namespace
{

/**
 * Drive @p predictor with outcomes from @p oracle for @p n branches
 * over @p numPcs rotating PCs; returns the misprediction rate over
 * the second half (first half = warm-up).
 */
double
missRate(BranchPredictor &p,
         const std::function<bool(int, uint64_t)> &oracle, int n,
         int numPcs = 7)
{
    int miss = 0, counted = 0;
    for (int i = 0; i < n; ++i) {
        uint64_t pc = 0x40A010 + (i % numPcs) * 144;
        bool taken = oracle(i, pc);
        bool pred = p.predict(pc, taken);
        p.update(pc, taken, pred);
        if (i >= n / 2) {
            ++counted;
            if (pred != taken)
                ++miss;
        }
    }
    return static_cast<double>(miss) / counted;
}

} // namespace

TEST(StaticPredictor, FixedDirection)
{
    StaticPredictor taken(true), notTaken(false);
    EXPECT_TRUE(taken.predict(0x10, false));
    EXPECT_FALSE(notTaken.predict(0x10, true));
}

TEST(IdealPredictor, AlwaysCorrect)
{
    IdealPredictor p;
    auto oracle = [](int i, uint64_t) { return (i * 7) % 3 == 0; };
    EXPECT_DOUBLE_EQ(missRate(p, oracle, 1000), 0.0);
}

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor p(14);
    auto oracle = [](int, uint64_t pc) { return (pc >> 4) & 1; };
    EXPECT_LT(missRate(p, oracle, 4000), 0.01);
}

TEST(Bimodal, CannotLearnPattern)
{
    BimodalPredictor p(14);
    auto oracle = [](int i, uint64_t) { return i % 2 == 0; };
    // Alternating outcomes defeat a 2-bit counter.
    EXPECT_GT(missRate(p, oracle, 4000), 0.3);
}

TEST(Gshare, LearnsShortPattern)
{
    GsharePredictor p(16, 12);
    auto oracle = [](int i, uint64_t) { return i % 4 == 0; };
    EXPECT_LT(missRate(p, oracle, 40000), 0.02);
}

TEST(Perceptron, LearnsLinearlySeparable)
{
    PerceptronPredictor p;
    // Outcome equals the direction 3 branches ago: linearly
    // separable in history, classic perceptron win.
    static bool hist[1 << 20];
    auto oracle = [](int i, uint64_t) {
        bool t = i < 3 ? true : hist[i - 3];
        if (i % 11 == 0)
            t = !t;
        hist[i] = t;
        return t;
    };
    EXPECT_LT(missRate(p, oracle, 60000), 0.12);
}

TEST(TageScl, ConfigScalesWithBudget)
{
    auto c8 = TageSclConfig::forBudgetKB(8);
    auto c64 = TageSclConfig::forBudgetKB(64);
    auto c1024 = TageSclConfig::forBudgetKB(1024);
    EXPECT_LT(c8.logTagged, c64.logTagged);
    EXPECT_LT(c64.logTagged, c1024.logTagged);
    EXPECT_EQ(c64.logTagged + 4, c1024.logTagged);

    TageScl t8(c8), t64(c64), t1024(c1024);
    EXPECT_LT(t8.storageBits(), t64.storageBits());
    EXPECT_LT(t64.storageBits(), t1024.storageBits());
    // The nominal budget should be within 2x of the reported bits.
    EXPECT_NEAR(static_cast<double>(t64.storageBits()) / 8 / 1024,
                64.0, 32.0);
}

TEST(TageScl, LearnsBias)
{
    TageScl p(TageSclConfig::forBudgetKB(64));
    auto oracle = [](int, uint64_t pc) { return (pc >> 4) % 3 != 0; };
    EXPECT_LT(missRate(p, oracle, 20000), 0.01);
}

TEST(TageScl, LearnsGlobalPattern)
{
    TageScl p(TageSclConfig::forBudgetKB(64));
    auto oracle = [](int i, uint64_t) { return i % 4 == 0; };
    EXPECT_LT(missRate(p, oracle, 100000), 0.005);
}

TEST(TageScl, LearnsLongCorrelation)
{
    TageScl p(TageSclConfig::forBudgetKB(64));
    // Outcome repeats the direction seen 100 conditional branches
    // earlier — needs long-history tables.
    static bool hist[1 << 20];
    auto oracle = [](int i, uint64_t) {
        bool t = i < 100 ? (i % 3 == 0) : hist[i - 100];
        if (i % 17 == 0)
            t = !t;
        hist[i] = t;
        return t;
    };
    EXPECT_LT(missRate(p, oracle, 300000), 0.02);
}

TEST(TageScl, LearnsLoopTripCount)
{
    TageScl p(TageSclConfig::forBudgetKB(64));
    auto oracle = [](int i, uint64_t) { return (i % 10) != 9; };
    EXPECT_LT(missRate(p, oracle, 100000, 1), 0.002);
}

TEST(TageScl, RandomStaysNearChance)
{
    TageScl p(TageSclConfig::forBudgetKB(64));
    Rng rng(99);
    auto oracle = [&](int, uint64_t) { return rng.nextBool(0.5); };
    double mr = missRate(p, oracle, 50000);
    EXPECT_GT(mr, 0.45);
    EXPECT_LT(mr, 0.55);
}

TEST(TageScl, BiasedRandomApproachesBiasRate)
{
    TageScl p(TageSclConfig::forBudgetKB(64));
    Rng rng(123);
    auto oracle = [&](int, uint64_t) { return rng.nextBool(0.85); };
    // The best any predictor can do is ~15% misses.
    double mr = missRate(p, oracle, 50000);
    EXPECT_LT(mr, 0.20);
    EXPECT_GT(mr, 0.10);
}

TEST(TageScl, BiggerBudgetNeverMuchWorse)
{
    // Capacity stress: many PCs with distinct patterns. The 1MB
    // predictor must beat the 8KB one clearly.
    auto oracle = [](int i, uint64_t pc) {
        return ((i / 3) ^ (pc >> 4)) % 5 < 2;
    };
    TageScl small(TageSclConfig::forBudgetKB(8));
    TageScl large(TageSclConfig::forBudgetKB(1024));
    double mrSmall = missRate(small, oracle, 200000, 4000);
    double mrLarge = missRate(large, oracle, 200000, 4000);
    EXPECT_LT(mrLarge, mrSmall);
}

TEST(TageScl, ResetRestoresColdState)
{
    TageScl p(TageSclConfig::forBudgetKB(16));
    auto oracle = [](int i, uint64_t) { return i % 4 == 0; };
    double warm = missRate(p, oracle, 40000);
    p.reset();
    double again = missRate(p, oracle, 40000);
    EXPECT_NEAR(warm, again, 0.02);
}

TEST(TageScl, NoAllocFreezesLearning)
{
    // With allocation suppressed the tagged tables stay empty, so a
    // pattern branch keeps mispredicting (bimodal can't learn it).
    TageSclConfig cfg = TageSclConfig::forBudgetKB(64);
    cfg.useLoop = false;
    cfg.useSc = false;
    TageScl p(cfg);
    int miss = 0;
    for (int i = 0; i < 20000; ++i) {
        bool taken = i % 2 == 0;
        bool pred = p.predict(0x5000, taken);
        p.update(0x5000, taken, pred, /*allocate=*/false);
        if (i > 10000 && pred != taken)
            ++miss;
    }
    EXPECT_GT(miss, 3000);
}

TEST(TageScl, ProviderAttribution)
{
    TageScl p(TageSclConfig::forBudgetKB(64));
    // Cold predictor: first prediction must come from the bimodal.
    p.predict(0x9000, true);
    EXPECT_EQ(p.lastProvider(), TageScl::Provider::Bimodal);
    EXPECT_EQ(p.lastProviderHistLen(), 0u);
}
