/**
 * @file
 * Quickstart: the whole Whisper flow on one application.
 *
 *   1. Generate a training trace of the 'mysql' model and profile it
 *      under a 64KB TAGE-SC-L baseline (the Intel LBR/PT stand-in).
 *   2. Run Whisper's offline analysis: hashed-history correlation,
 *      randomized formula testing, brhint placement.
 *   3. Evaluate baseline vs. Whisper on a *different* input, the
 *      paper's cross-input methodology.
 *
 * Usage: quickstart [app-name] [records]
 */

#include <cstdlib>
#include <iostream>

#include "sim/experiment.hh"
#include "util/table.hh"

using namespace whisper;

int
main(int argc, char **argv)
{
    std::string appName = argc > 1 ? argv[1] : "mysql";
    ExperimentConfig cfg;
    if (argc > 2) {
        cfg.trainRecords = std::strtoull(argv[2], nullptr, 10);
        cfg.testRecords = cfg.trainRecords;
    }

    const AppConfig &app = appByName(appName);
    std::cout << "== Whisper quickstart on '" << app.name << "' ==\n";
    std::cout << "profiling " << cfg.trainRecords
              << " branch records on input #0...\n";

    BranchProfile profile = profileApp(app, 0, cfg);
    std::cout << "  static branches seen:  " << profile.numBranches()
              << "\n  hard branches:         "
              << profile.numHardBranches()
              << "\n  baseline mispredicts:  "
              << profile.totalMispredicts << " ("
              << TableReporter::formatDouble(
                     1000.0 * profile.totalMispredicts /
                     profile.totalInstructions)
              << " MPKI)\n";

    std::cout << "training Whisper (randomized formula testing, "
              << 100.0 * cfg.whisper.formulaFraction
              << "% of formulas)...\n";
    WhisperBuild build = trainWhisper(app, 0, profile, cfg);
    std::cout << "  hints emitted:         " << build.hints.size()
              << "\n  training time:         "
              << TableReporter::formatDouble(build.stats.trainSeconds, 3)
              << " s\n  static overhead:       "
              << TableReporter::formatDouble(
                     build.overhead.staticIncreasePct)
              << "%\n  dynamic overhead:      "
              << TableReporter::formatDouble(
                     build.overhead.dynamicIncreasePct)
              << "%\n";

    std::cout << "evaluating on unseen input #1...\n";
    auto baseline = makeTage(cfg.tageBudgetKB);
    auto stats0 = evalApp(app, 1, cfg, *baseline, cfg.evalWarmup);

    auto whisperPred = makeWhisperPredictor(cfg, build);
    auto stats1 = evalApp(app, 1, cfg, *whisperPred, cfg.evalWarmup);

    TableReporter table("baseline vs Whisper (test input #1)");
    table.setHeader({"predictor", "MPKI", "accuracy-%",
                     "mispredict-reduction-%"});
    table.addRow(baseline->name(),
                 {stats0.mpki(), 100.0 * stats0.accuracy(), 0.0});
    table.addRow(whisperPred->name(),
                 {stats1.mpki(), 100.0 * stats1.accuracy(),
                  reductionPercent(stats0, stats1)});
    table.print();
    return 0;
}
