/**
 * @file
 * Inspect what Whisper's offline analysis actually produces: train
 * on an application and dump the strongest brhint instructions —
 * their Boolean formula (rendered), correlation length, bias mode,
 * predecessor placement, and expected benefit — plus the encoding
 * round-trip, demonstrating the brhint/Formula public API.
 *
 * Usage: hint_inspector [app-name] [top-n]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/brhint.hh"
#include "core/formula.hh"
#include "sim/experiment.hh"
#include "util/table.hh"

using namespace whisper;

int
main(int argc, char **argv)
{
    std::string appName = argc > 1 ? argv[1] : "python";
    size_t topN = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 12;

    const AppConfig &app = appByName(appName);
    ExperimentConfig cfg;
    std::cout << "== Whisper hint inspector: '" << app.name
              << "' ==\n";

    BranchProfile profile = profileApp(app, 0, cfg);
    WhisperBuild build = trainWhisper(app, 0, profile, cfg);
    std::cout << "hard branches: " << profile.numHardBranches()
              << ", hints emitted: " << build.hints.size()
              << ", training time: "
              << TableReporter::formatDouble(build.stats.trainSeconds,
                                             2)
              << "s\n\n";

    // Strongest hints first (most profiled mispredictions removed).
    std::vector<const TrainedHint *> ranked;
    for (const auto &h : build.hints)
        ranked.push_back(&h);
    std::sort(ranked.begin(), ranked.end(),
              [](const TrainedHint *a, const TrainedHint *b) {
                  return a->profiledMispredicts -
                             a->expectedMispredicts >
                         b->profiledMispredicts -
                             b->expectedMispredicts;
              });
    if (ranked.size() > topN)
        ranked.resize(topN);

    TableReporter table("top brhint instructions");
    table.setHeader({"branch-pc", "hist-len", "mode", "formula",
                     "profiled-miss", "expected-miss", "encoding"});
    for (const TrainedHint *h : ranked) {
        std::string mode, formula = "-";
        switch (h->hint.bias) {
          case HintBias::AlwaysTaken:
            mode = "always-taken";
            break;
          case HintBias::NeverTaken:
            mode = "never-taken";
            break;
          case HintBias::Formula: {
            BoolFormula f(h->hint.formula, 8);
            mode = opClassName(f.classify());
            formula = f.toString();
            break;
          }
        }
        char pcBuf[32], encBuf[32];
        std::snprintf(pcBuf, sizeof(pcBuf), "0x%llx",
                      static_cast<unsigned long long>(h->pc));
        std::snprintf(encBuf, sizeof(encBuf), "0x%09llx",
                      static_cast<unsigned long long>(
                          h->hint.encode()));
        table.addRow({pcBuf, std::to_string(h->historyLength), mode,
                      formula, std::to_string(h->profiledMispredicts),
                      std::to_string(h->expectedMispredicts),
                      encBuf});

        // Round-trip sanity: the 33-bit encoding is lossless.
        if (BrHint::decode(h->hint.encode()) != h->hint) {
            std::cerr << "encoding round-trip failed!\n";
            return 1;
        }
    }
    table.print();

    // Placement summary for the same hints.
    TableReporter placed("placements (predecessor blocks)");
    placed.setHeader({"branch-pc", "predecessor-pc", "coverage",
                      "precision"});
    for (const TrainedHint *h : ranked) {
        for (const auto &pl : build.placements) {
            if (pl.branchPc != h->pc)
                continue;
            char a[32], b[32];
            std::snprintf(a, sizeof(a), "0x%llx",
                          static_cast<unsigned long long>(
                              pl.branchPc));
            std::snprintf(b, sizeof(b), "0x%llx",
                          static_cast<unsigned long long>(
                              pl.predecessorPc));
            placed.addRow(
                {a, b, TableReporter::formatDouble(pl.coverage),
                 TableReporter::formatDouble(
                     std::min(pl.precision, 1.0))});
        }
    }
    placed.print();

    std::cout << "static overhead "
              << TableReporter::formatDouble(
                     build.overhead.staticIncreasePct)
              << "%, dynamic overhead "
              << TableReporter::formatDouble(
                     build.overhead.dynamicIncreasePct)
              << "% (paper Fig. 19: 11.4% / 9.8%)\n";
    return 0;
}
