/**
 * @file
 * Using the library as a toolkit: define a custom application
 * model, collect its profile, train Whisper, and evaluate —
 * everything a user would do to study their own workload shape.
 *
 * The custom app here models a hypothetical rule-engine service:
 * moderate footprint, unusually heavy long-history correlation
 * (rule outcomes depend on which rules fired earlier in the
 * request) — the best case the paper's mechanism targets.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace whisper;

int
main()
{
    // 1. Describe the application.
    AppConfig app;
    app.name = "rule-engine";
    app.seed = 0xBEEF;
    app.numRegions = 500;
    app.numRequestTypes = 120;
    app.zipfTheta = 1.3;
    app.wBiased = 0.55;
    app.wLoop = 0.04;
    app.wShortHistory = 0.08;
    app.wHashedHistory = 0.20; // rule-firing correlations
    app.wRandom = 0.01;
    app.minCorrelationIdx = 6; // correlations start at ~45 branches
    app.histNoiseMax = 0.05;

    ExperimentConfig cfg;
    std::cout << "== custom workload: " << app.name << " ==\n";
    {
        AppWorkload wl(app, 0, 1);
        std::cout << "static branches: " << wl.staticBranches()
                  << "\n";
    }

    // 2. Profile the training input under the deployed predictor.
    BranchProfile profile = profileApp(app, 0, cfg);
    std::cout << "profiled " << profile.totalConditionals
              << " conditional branches, "
              << profile.numHardBranches() << " hard\n";

    // 3. Offline analysis: hints + placements.
    WhisperBuild build = trainWhisper(app, 0, profile, cfg);
    std::cout << "hints: " << build.hints.size() << " (training "
              << TableReporter::formatDouble(build.stats.trainSeconds,
                                             2)
              << "s, " << build.stats.formulasScored
              << " formulas scored)\n";

    // 4. Evaluate on an unseen input, accuracy and timing.
    auto baseline = makeTage(cfg.tageBudgetKB);
    auto s0 = evalApp(app, 1, cfg, *baseline, cfg.evalWarmup);
    auto wp = makeWhisperPredictor(cfg, build);
    auto s1 = evalApp(app, 1, cfg, *wp, cfg.evalWarmup);

    auto tage2 = makeTage(cfg.tageBudgetKB);
    PipelineStats p0 = evalPipeline(app, 1, cfg, *tage2);
    auto wp2 = makeWhisperPredictor(cfg, build);
    PipelineStats p1 = evalPipeline(app, 1, cfg, *wp2);

    TableReporter table("rule-engine: baseline vs Whisper");
    table.setHeader({"metric", "tage-64KB", "whisper"});
    table.addRow({"MPKI", TableReporter::formatDouble(s0.mpki()),
                  TableReporter::formatDouble(s1.mpki())});
    table.addRow({"accuracy-%",
                  TableReporter::formatDouble(100 * s0.accuracy()),
                  TableReporter::formatDouble(100 * s1.accuracy())});
    table.addRow({"IPC", TableReporter::formatDouble(p0.ipc()),
                  TableReporter::formatDouble(p1.ipc())});
    table.addRow(
        {"reduction-%", "-",
         TableReporter::formatDouble(reductionPercent(s0, s1))});
    table.addRow(
        {"speedup-%", "-",
         TableReporter::formatDouble(
             speedupPercent(p0.cycles(), p1.cycles()))});
    table.print();
    return 0;
}
