/**
 * @file
 * End-to-end data center study: the scenario the paper's intro
 * motivates. For a set of server workloads, measure how much IPC a
 * better branch predictor buys on the decoupled-frontend pipeline
 * model — comparing the deployed 64KB TAGE-SC-L, Whisper on top of
 * it, an unlimited MTAGE-SC, and the ideal direction predictor —
 * and where the cycles go (squash vs frontend stalls).
 *
 * Usage: datacenter_study [records] [app ...]
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "bp/simple_predictors.hh"
#include "sim/experiment.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace whisper;

int
main(int argc, char **argv)
{
    ExperimentConfig cfg;
    if (argc > 1) {
        cfg.trainRecords = std::strtoull(argv[1], nullptr, 10);
        cfg.testRecords = cfg.trainRecords;
    }
    std::vector<std::string> names;
    for (int i = 2; i < argc; ++i)
        names.push_back(argv[i]);
    if (names.empty())
        names = {"mysql", "finagle-http", "python"};

    TableReporter table("data center study: IPC and stall anatomy "
                        "(test input #1)");
    table.setHeader({"app+predictor", "IPC", "speedup-%", "MPKI",
                     "squash-cyc-%", "frontend-cyc-%"});

    for (const auto &name : names) {
        const AppConfig &app = appByName(name);
        std::cout << "profiling + training Whisper on '" << name
                  << "'...\n";
        BranchProfile profile = profileApp(app, 0, cfg);
        WhisperBuild build = trainWhisper(app, 0, profile, cfg);

        auto addRow = [&](const std::string &label,
                          const PipelineStats &s, double baseCycles) {
            table.addRow(
                {name + "/" + label,
                 TableReporter::formatDouble(s.ipc()),
                 TableReporter::formatDouble(
                     speedupPercent(baseCycles, s.cycles())),
                 TableReporter::formatDouble(s.mpki()),
                 TableReporter::formatDouble(
                     100.0 * s.squashCycles / s.cycles()),
                 TableReporter::formatDouble(
                     100.0 * s.frontendStallCycles / s.cycles())});
        };

        auto tage = makeTage(cfg.tageBudgetKB);
        PipelineStats base = evalPipeline(app, 1, cfg, *tage);
        addRow("tage-64KB", base, base.cycles());

        auto wp = makeWhisperPredictor(cfg, build);
        addRow("whisper", evalPipeline(app, 1, cfg, *wp),
               base.cycles());

        auto mtage = makeMtage(cfg);
        addRow("mtage-sc", evalPipeline(app, 1, cfg, *mtage),
               base.cycles());

        IdealPredictor ideal;
        addRow("ideal", evalPipeline(app, 1, cfg, ideal),
               base.cycles());
    }
    table.print();
    return 0;
}
